"""The compiled vertex program: the object layers hold and executors run.

Since the compile/run split, :class:`VertexProgram` is a thin facade over
two explicitly separated halves:

* **compile time** — an immutable :class:`~repro.compiler.plan.ProgramPlan`
  requested from the process-wide :func:`~repro.compiler.plan.plan_cache`,
  so structurally identical programs (same trace signature + options)
  compile exactly once no matter how many layers, models, or runs request
  them;
* **run time** — an :class:`~repro.core.engine.ExecutionEngine` (the
  generated-kernel engine by default; the tensor-IR interpreter for
  differential testing) that launches the plan against a
  :class:`GraphContext`.

The per-call protocol matches the executor's State Stack discipline:

* ``forward(ctx, node_feats, edge_feats)`` returns ``(out, saved_env)``;
  the caller pushes ``saved_env`` (only the buffers the backward program
  needs — or everything, when compiled with ``state_stack_opt=False`` for
  the ablation) onto the State Stack.
* ``backward(ctx, g_out, saved_env)`` returns gradients keyed by feature
  name (edge gradients converted back to label order).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.compiler.ir import VNode
from repro.compiler.plan import ProgramPlan, plan_cache
from repro.compiler.runtime import GraphContext
from repro.compiler.symbols import Vertex
from repro.device import current_device

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.core.engine import ExecutionEngine

__all__ = ["VertexProgram", "compile_vertex_program"]


class VertexProgram:
    """A compiled vertex-centric GNN aggregation: cached plan + engine."""

    def __init__(
        self,
        fn: Callable[[Vertex], VNode] | None = None,
        feature_widths: Mapping[str, str] | None = None,
        grad_features: set[str] | None = None,
        name: str = "vertex_program",
        fused: bool = True,
        state_stack_opt: bool = True,
        optimize: bool = True,
        engine: "str | ExecutionEngine" = "kernel",
        dtype: str = "float32",
        plan: ProgramPlan | None = None,
    ) -> None:
        if plan is None:
            if fn is None:
                raise TypeError("VertexProgram needs a vertex function or a plan")
            plan = plan_cache().get_or_build(
                fn,
                feature_widths=feature_widths,
                grad_features=grad_features,
                name=name,
                fused=fused,
                state_stack_opt=state_stack_opt,
                optimize=optimize,
                dtype=dtype,
            )
        self.plan = plan
        self.name = plan.name if (fn is None and name == "vertex_program") else name
        # Resolved lazily: repro.core imports this module at package-import
        # time, so the engine registry may not be loadable yet.
        self._engine_spec = engine
        self._engine: "ExecutionEngine | None" = None

    # ------------------------------------------------------------------
    # Engine selection (per program; executors may override per call)
    # ------------------------------------------------------------------
    @property
    def engine(self) -> "ExecutionEngine":
        """This program's default execution engine."""
        if self._engine is None:
            from repro.core.engine import get_engine

            self._engine = get_engine(self._engine_spec)
        return self._engine

    def with_engine(self, engine: "str | ExecutionEngine") -> "VertexProgram":
        """A sibling program sharing this plan but running on ``engine``."""
        other = VertexProgram(plan=self.plan, engine=engine, name=self.name)
        return other

    # ------------------------------------------------------------------
    # Plan delegation (the long-standing public surface)
    # ------------------------------------------------------------------
    @property
    def plan_id(self) -> str:
        """The plan's content-hash identity in the process-wide cache."""
        return self.plan.plan_id

    @property
    def traced(self):
        """The traced vertex IR."""
        return self.plan.traced

    @property
    def fwd_prog(self):
        """The forward tensor program."""
        return self.plan.fwd_prog

    @property
    def bwd_prog(self):
        """The backward tensor program."""
        return self.plan.bwd_prog

    @property
    def analysis(self):
        """The saved-tensor analysis (State Stack manifest)."""
        return self.plan.analysis

    @property
    def grad_map(self):
        """Input buffer → gradient buffer map of the backward program."""
        return self.plan.grad_map

    @property
    def _widths(self):
        """Inferred buffer widths (kept under the historical name)."""
        return self.plan.widths

    @property
    def fused(self) -> bool:
        """Whether the plan compiled to one fused kernel per pass."""
        return self.plan.fused

    @property
    def state_stack_opt(self) -> bool:
        """Whether the saved set was pruned by the IR comparison."""
        return self.plan.state_stack_opt

    @property
    def fwd_kernel(self):
        """The fused forward kernel (None in unfused mode)."""
        return self.plan.fwd_kernel

    @property
    def bwd_kernel(self):
        """The fused backward kernel (None in unfused mode)."""
        return self.plan.bwd_kernel

    @property
    def forward_source(self) -> str:
        """The generated forward kernel's source text."""
        return self.plan.forward_source

    @property
    def backward_source(self) -> str:
        """The generated backward kernel's source text."""
        return self.plan.backward_source

    @property
    def saved_spec(self) -> list[str]:
        """Buffer names pushed to the State Stack per timestamp."""
        return list(self.plan.saved_spec)

    def required_features(self) -> tuple[set[str], set[str]]:
        """(node feature names, edge feature names) the program reads."""
        return self.plan.required_features()

    # ------------------------------------------------------------------
    def _bind(self, ctx: GraphContext, node_feats, edge_feats) -> dict[str, np.ndarray]:
        env: dict[str, np.ndarray] = {}
        for buf, (kind, feat) in self.plan.fwd_prog.inputs.items():
            if kind == "node":
                if feat not in node_feats:
                    raise KeyError(f"{self.name}: missing node feature {feat!r}")
                env[buf] = node_feats[feat]
            else:
                if edge_feats is None or feat not in edge_feats:
                    raise KeyError(f"{self.name}: missing edge feature {feat!r}")
                env[buf] = ctx.bind_edge_feature(edge_feats[feat])
        return env

    def forward(
        self,
        ctx: GraphContext,
        node_feats: Mapping[str, np.ndarray],
        edge_feats: Mapping[str, np.ndarray] | None = None,
        engine: "ExecutionEngine | None" = None,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Run the forward pass on ``engine`` (default: this program's own);
        returns ``(out, saved_env)``."""
        device = current_device()
        env = self._bind(ctx, node_feats, edge_feats)
        out, saved = (engine or self.engine).forward(self.plan, ctx, env)
        device.alloc.adopt(np.asarray(out), tag="kernel.out")
        return out, saved

    def backward(
        self,
        ctx: GraphContext,
        g_out: np.ndarray,
        saved: Mapping[str, np.ndarray],
        engine: "ExecutionEngine | None" = None,
    ) -> dict[str, np.ndarray]:
        """Run the backward pass; returns gradients keyed by feature name."""
        grads_by_buf = (engine or self.engine).backward(self.plan, ctx, g_out, saved)
        grads: dict[str, np.ndarray] = {}
        for buf, grad in grads_by_buf.items():
            kind, feat = self.plan.fwd_prog.inputs[buf]
            if kind == "edge":
                grad = ctx.edge_grad_to_labels(np.asarray(grad))
            grads[feat] = grad
        return grads

    def describe(self) -> str:
        """Human-readable compilation report (IR + programs + saved set)."""
        return self.plan.describe()


def compile_vertex_program(
    fn: Callable[[Vertex], VNode],
    feature_widths: Mapping[str, str] | None = None,
    grad_features: set[str] | None = None,
    name: str = "vertex_program",
    fused: bool = True,
    state_stack_opt: bool = True,
    optimize: bool = True,
    engine: "str | ExecutionEngine" = "kernel",
    dtype: str = "float32",
) -> VertexProgram:
    """Compile a vertex-centric function through the plan cache; see
    :class:`VertexProgram`."""
    return VertexProgram(
        fn,
        feature_widths=feature_widths,
        grad_features=grad_features,
        name=name,
        fused=fused,
        state_stack_opt=state_stack_opt,
        optimize=optimize,
        engine=engine,
        dtype=dtype,
    )
