"""The compiled vertex program: the object layers hold and executors run.

``compile_vertex_program`` drives the whole pipeline (trace → lower →
optimize → autodiff → codegen) and caches compiled kernels in the device's
kernel launcher keyed by the trace signature plus compile options, so
re-instantiating a layer reuses kernels exactly like Seastar's kernel cache.

The per-call protocol matches the executor's State Stack discipline:

* ``forward(ctx, node_feats, edge_feats)`` returns ``(out, saved_env)``;
  the caller pushes ``saved_env`` (only the buffers the backward program
  needs — or everything, when compiled with ``state_stack_opt=False`` for
  the ablation) onto the State Stack.
* ``backward(ctx, g_out, saved_env)`` returns gradients keyed by feature
  name (edge gradients converted back to label order).
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.compiler.autodiff import build_backward
from repro.compiler.codegen import (
    compile_program,
    generate_backward_source,
    generate_forward_source,
    generate_op_kernels,
)
from repro.compiler.lower import CompileError, lower_trace
from repro.compiler.passes import SavedAnalysis, cse, dce, saved_analysis
from repro.compiler.runtime import GraphContext
from repro.compiler.symbols import Vertex, trace
from repro.compiler.ir import VNode
from repro.device import current_device
from repro.device.kernel import CompiledKernel

__all__ = ["VertexProgram", "compile_vertex_program"]


class VertexProgram:
    """A compiled vertex-centric GNN aggregation."""

    def __init__(
        self,
        fn: Callable[[Vertex], VNode],
        feature_widths: Mapping[str, str] | None = None,
        grad_features: set[str] | None = None,
        name: str = "vertex_program",
        fused: bool = True,
        state_stack_opt: bool = True,
        optimize: bool = True,
    ) -> None:
        self.name = name
        self.fused = fused
        self.state_stack_opt = state_stack_opt
        self.traced = trace(fn)
        self.fwd_prog, self._widths = lower_trace(
            self.traced, dict(feature_widths or {}), name=name
        )
        if optimize:
            cse(self.fwd_prog)
            dce(self.fwd_prog)

        if grad_features is None:
            wrt = set(self.fwd_prog.inputs)
        else:
            wrt = {
                buf
                for buf, (_kind, feat) in self.fwd_prog.inputs.items()
                if feat in grad_features
            }
            missing = grad_features - {feat for _, feat in self.fwd_prog.inputs.values()}
            if missing:
                raise CompileError(f"grad_features not read by the program: {sorted(missing)}")
        bwd_result = build_backward(self.fwd_prog, self._widths, wrt=wrt)
        self.bwd_prog = bwd_result.prog
        if optimize:
            cse(self.bwd_prog)
            dce(self.bwd_prog)
            # CSE/DCE may have dropped saved references; recompute.
            bwd_result.saved = [
                n for n, (k, _) in self.bwd_prog.inputs.items() if k == "saved"
            ]
        self.grad_map = {
            inp: g for inp, g in bwd_result.grad_map.items() if g in set(self.bwd_prog.outputs)
        }
        self.analysis: SavedAnalysis = saved_analysis(self.fwd_prog, self.bwd_prog)

        if state_stack_opt:
            self._saved_spec = list(bwd_result.saved)
        else:
            # Ablation: retain every forward buffer, like a backend without
            # the IR comparison (the bwd kernel reads a superset-compatible
            # dict, so correctness is unchanged).
            self._saved_spec = self.analysis.all_forward_buffers

        self._compile_kernels()

    # ------------------------------------------------------------------
    def _cache_key(self, which: str) -> tuple:
        return (
            self.traced.signature(),
            tuple(sorted(self._widths.items())),
            tuple(self._saved_spec),
            tuple(sorted(self.grad_map)),
            self.fused,
            which,
        )

    def _compile_kernels(self) -> None:
        launcher = current_device().launcher
        if self.fused:
            fkey, bkey = self._cache_key("fwd"), self._cache_key("bwd")
            self.fwd_kernel = launcher.get(fkey)
            if self.fwd_kernel is None:
                src = generate_forward_source(self.fwd_prog, self._saved_spec, f"{self.name}_fwd")
                self.fwd_kernel = launcher.put(fkey, compile_program(src, f"{self.name}_fwd"))
            self.bwd_kernel = launcher.get(bkey)
            if self.bwd_kernel is None:
                src = generate_backward_source(self.bwd_prog, self.grad_map, f"{self.name}_bwd")
                self.bwd_kernel = launcher.put(bkey, compile_program(src, f"{self.name}_bwd"))
        else:
            self._fwd_op_kernels = generate_op_kernels(self.fwd_prog, f"{self.name}_fwd")
            self._bwd_op_kernels = generate_op_kernels(self.bwd_prog, f"{self.name}_bwd")

    # ------------------------------------------------------------------
    @property
    def forward_source(self) -> str:
        """The generated forward kernel's source text."""
        if self.fused:
            return self.fwd_kernel.source
        return "\n".join(k.source for _, k in self._fwd_op_kernels)

    @property
    def backward_source(self) -> str:
        """The generated backward kernel's source text."""
        if self.fused:
            return self.bwd_kernel.source
        return "\n".join(k.source for _, k in self._bwd_op_kernels)

    @property
    def saved_spec(self) -> list[str]:
        """Buffer names pushed to the State Stack per timestamp."""
        return list(self._saved_spec)

    def required_features(self) -> tuple[set[str], set[str]]:
        """(node feature names, edge feature names) the program reads."""
        node, edge = set(), set()
        for kind, feat in self.fwd_prog.inputs.values():
            (node if kind == "node" else edge).add(feat)
        return node, edge

    # ------------------------------------------------------------------
    def _bind(self, ctx: GraphContext, node_feats, edge_feats) -> dict[str, np.ndarray]:
        env: dict[str, np.ndarray] = {}
        for buf, (kind, feat) in self.fwd_prog.inputs.items():
            if kind == "node":
                if feat not in node_feats:
                    raise KeyError(f"{self.name}: missing node feature {feat!r}")
                env[buf] = node_feats[feat]
            else:
                if edge_feats is None or feat not in edge_feats:
                    raise KeyError(f"{self.name}: missing edge feature {feat!r}")
                env[buf] = ctx.bind_edge_feature(edge_feats[feat])
        return env

    def _launch_config(self, ctx: GraphContext, env: Mapping[str, np.ndarray]):
        """Feature-adaptive launch shape (Seastar's heuristic), recorded on
        the kernel for inspection; the simulated device executes the same
        math regardless, but the configuration model is preserved."""
        from repro.device import feature_adaptive_config

        feature_size = 1
        for arr in env.values():
            if getattr(arr, "ndim", 0) == 2:
                feature_size = max(feature_size, arr.shape[1])
        return feature_adaptive_config(max(1, ctx.num_nodes), feature_size)

    def forward(
        self,
        ctx: GraphContext,
        node_feats: Mapping[str, np.ndarray],
        edge_feats: Mapping[str, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Run the generated forward kernel; returns ``(out, saved_env)``."""
        device = current_device()
        env = self._bind(ctx, node_feats, edge_feats)
        if self.fused:
            self.fwd_kernel.meta["launch_config"] = self._launch_config(ctx, env)
            out, saved = device.launcher.launch(self.fwd_kernel, ctx, env)
        else:
            for op, kernel in self._fwd_op_kernels:
                args = [env[n] for n in op.ins if n != "__ones__"]
                env[op.out] = device.launcher.launch(kernel, ctx, *args)
            for buf, value in self.fwd_prog.consts.items():
                env.setdefault(buf, value)
            out = env[self.fwd_prog.outputs[0]]
            saved = {name: env[name] for name in self._saved_spec}
        device.alloc.adopt(np.asarray(out), tag="kernel.out")
        return out, saved

    def backward(
        self,
        ctx: GraphContext,
        g_out: np.ndarray,
        saved: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Run the generated backward kernel; returns gradients keyed by feature name."""
        device = current_device()
        if self.fused:
            grads_by_buf = device.launcher.launch(self.bwd_kernel, ctx, g_out, saved)
        else:
            env: dict[str, np.ndarray] = {"g_out": g_out}
            for name, (kind, _) in self.bwd_prog.inputs.items():
                if kind == "saved":
                    env[name] = saved[name]
            for buf, value in self.bwd_prog.consts.items():
                env[buf] = value
            for op, kernel in self._bwd_op_kernels:
                args = [env[n] for n in op.ins if n != "__ones__"]
                env[op.out] = device.launcher.launch(kernel, ctx, *args)
            grads_by_buf = {inp: env[g] for inp, g in self.grad_map.items()}
        grads: dict[str, np.ndarray] = {}
        for buf, grad in grads_by_buf.items():
            kind, feat = self.fwd_prog.inputs[buf]
            if kind == "edge":
                grad = ctx.edge_grad_to_labels(np.asarray(grad))
            grads[feat] = grad
        return grads

    def describe(self) -> str:
        """Human-readable compilation report (IR + programs + saved set)."""
        return "\n\n".join(
            [
                f"== vertex IR ==\n{self.traced.root.pretty()}",
                f"== forward ==\n{self.fwd_prog.render()}",
                f"== backward ==\n{self.bwd_prog.render()}",
                f"== state stack ==\n{self.analysis.summary()}",
            ]
        )


def compile_vertex_program(
    fn: Callable[[Vertex], VNode],
    feature_widths: Mapping[str, str] | None = None,
    grad_features: set[str] | None = None,
    name: str = "vertex_program",
    fused: bool = True,
    state_stack_opt: bool = True,
    optimize: bool = True,
) -> VertexProgram:
    """Compile a vertex-centric function; see :class:`VertexProgram`."""
    return VertexProgram(
        fn,
        feature_widths=feature_widths,
        grad_features=grad_features,
        name=name,
        fused=fused,
        state_stack_opt=state_stack_opt,
        optimize=optimize,
    )
