"""Diagnostics for the compiler verifier: codes, severities, reports.

Every check in :mod:`repro.compiler.verify` emits a :class:`Diagnostic`
carrying a stable error code (``STG0xx``), a severity, a human-readable
message, and source provenance (which IR node, tensor-IR op, or buffer the
problem anchors to).  Diagnostics accumulate into a :class:`LintReport`;
at plan-build time errors raise :class:`VerifyError` while warnings surface
through the tracer (as ``verify`` instant events) and the run manifest.

The code registry below is the single source of truth: each code has a
fixed default severity and a one-line description (rendered into the
``repro lint`` output and the docs/COMPILER.md error table), and every code
is provoked by at least one mutation test — ``STG0xx`` (compiler verifier)
in ``tests/test_compiler_verify.py``, ``STG2xx`` (the concurrency
lock-discipline analyzer, :mod:`repro.analysis.lockcheck` — see
docs/ANALYSIS.md) in ``tests/test_analysis_lockcheck.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lower import CompileError

__all__ = [
    "Diagnostic",
    "LintReport",
    "VerifyError",
    "CODES",
    "CONCURRENCY_CODES",
    "ERROR",
    "WARNING",
    "code_table",
]

ERROR = "error"
WARNING = "warning"

#: code -> (default severity, one-line description)
CODES: dict[str, tuple[str, str]] = {
    # -- vertex-IR (VNode DAG) checks ----------------------------------
    "STG001": (ERROR, "vertex IR contains a cycle"),
    "STG002": (ERROR, "stage-algebra violation: stored stage disagrees with the recomputed stage (or malformed op)"),
    "STG003": (ERROR, "aggregation body is a pure destination-stage expression"),
    "STG004": (ERROR, "orphan (unnamed) or duplicate feature leaf"),
    "STG005": (WARNING, "nested aggregation pulled into edge space (legal only at scalar width)"),
    # -- tensor-IR (TProgram) checks -----------------------------------
    "STG010": (ERROR, "buffer assigned more than once (SSA violation)"),
    "STG011": (ERROR, "op reads a buffer before any definition"),
    "STG012": (ERROR, "dangling output / unused input or const"),
    "STG013": (ERROR, "op kind unknown or attr/operand schema violation"),
    "STG014": (ERROR, "buffer missing from the space table"),
    # -- gradient / State-Stack checks ---------------------------------
    "STG020": (ERROR, "differentiable forward input has no gradient output in the backward program"),
    "STG021": (ERROR, "backward saved input not produced by the forward program (F_b ⊆ F_f violated)"),
    "STG022": (ERROR, "backward grad seed does not reference the forward output"),
    # -- write-hazard analysis -----------------------------------------
    "STG030": (ERROR, "non-reduction write from edge space into a node-space buffer (atomic-scatter condition)"),
    # -- concurrency lock-discipline checks (repro.analysis.lockcheck);
    #    each provoked by a mutation test in tests/test_analysis_lockcheck.py
    "STG201": (ERROR, "lock-order cycle across lock sites (potential deadlock)"),
    "STG202": (ERROR, "attribute written both under and outside its guarding lock (data-race candidate)"),
    "STG203": (ERROR, "bare .acquire() without with/finally release (lock leak on exception)"),
    "STG204": (WARNING, "blocking call while holding a foreign lock (stall/deadlock risk)"),
}

#: The concurrency family (emitted by :mod:`repro.analysis.lockcheck`, not
#: the compiler verifier) — mutation coverage for these lives in
#: ``tests/test_analysis_lockcheck.py``.
CONCURRENCY_CODES: frozenset[str] = frozenset(
    code for code in CODES if code.startswith("STG2")
)


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding: stable code, severity, message, provenance."""

    code: str
    severity: str
    message: str
    #: source provenance: "%3 mul.edge", "op t4 = spmm(...)", "buffer 'n_h'"
    where: str = ""
    #: program / DAG the finding belongs to (e.g. "gcn", "gcn_bwd")
    program: str = ""

    def render(self) -> str:
        """Single-line form: ``STG010 error [gcn] message (at ...)``."""
        prog = f" [{self.program}]" if self.program else ""
        where = f" (at {self.where})" if self.where else ""
        return f"{self.code} {self.severity}{prog} {self.message}{where}"


class LintReport:
    """Accumulated diagnostics for one verification subject."""

    def __init__(self, subject: str = "") -> None:
        self.subject = subject
        self.diagnostics: list[Diagnostic] = []

    # ------------------------------------------------------------------
    def add(
        self,
        code: str,
        message: str,
        where: str = "",
        program: str = "",
        severity: str | None = None,
    ) -> Diagnostic:
        """Record one finding; severity defaults from the code registry."""
        if code not in CODES:
            raise KeyError(f"unknown diagnostic code {code!r}")
        diag = Diagnostic(
            code=code,
            severity=severity or CODES[code][0],
            message=message,
            where=where,
            program=program,
        )
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "LintReport") -> None:
        """Merge another report's diagnostics into this one."""
        self.diagnostics.extend(other.diagnostics)

    # ------------------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        """Findings at error severity."""
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Findings at warning severity."""
        return [d for d in self.diagnostics if d.severity == WARNING]

    def ok(self) -> bool:
        """True when no errors were recorded (warnings allowed)."""
        return not self.errors

    def codes(self) -> set[str]:
        """The set of codes recorded."""
        return {d.code for d in self.diagnostics}

    def counts_by_code(self) -> dict[str, int]:
        """``{code: occurrences}`` over all diagnostics."""
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.code] = out.get(d.code, 0) + 1
        return out

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line ``subject: E errors, W warnings`` summary."""
        subject = f"{self.subject}: " if self.subject else ""
        return f"{subject}{len(self.errors)} error(s), {len(self.warnings)} warning(s)"

    def render(self) -> str:
        """Multi-line report: summary followed by one line per finding."""
        lines = [self.summary()]
        lines += [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)

    def raise_if_errors(self) -> None:
        """Raise :class:`VerifyError` carrying this report if any error."""
        if self.errors:
            raise VerifyError(self)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LintReport({self.summary()!r})"


class VerifyError(CompileError):
    """A verification failure at plan-build (or ``repro lint``) time.

    Subclasses :class:`~repro.compiler.lower.CompileError` so existing
    ``except CompileError`` call sites treat verifier rejections like any
    other refusal to compile.  The full :class:`LintReport` rides along as
    ``.report``.
    """

    def __init__(self, report: LintReport) -> None:
        super().__init__(report.render())
        self.report = report


def code_table() -> list[tuple[str, str, str]]:
    """``(code, default severity, description)`` rows, sorted by code."""
    return [(code, sev, desc) for code, (sev, desc) in sorted(CODES.items())]
