"""Backward-program construction (auto-differentiation of the tensor IR).

Walks the forward program in reverse, emitting vector-Jacobian products.
Two properties matter for the paper's claims:

* the gradient of ``spmm`` is ``spmm_T`` — a product over the **backward
  CSR** (out-neighbors), which is why the graph abstraction maintains both
  orientations with shared edge labels;
* every forward value a VJP rule reads is registered as a *saved* input of
  the backward program.  After dead-code elimination, the surviving saved
  set is exactly what the executor must push onto the State Stack — the
  paper's "compare the backward and forward intermediate representations to
  determine which features need to be stored" memory optimization.

Broadcast adjoints are resolved statically from the width table produced by
lowering: a scalar-width ``(N,)`` operand multiplied into a vector-width
``(N,F)`` value receives a column-summed gradient (``colsum``), with no
shape probing at run time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.compiler.lower import CompileError
from repro.compiler.tir import IMPLICIT_ONES, TOp, TProgram

__all__ = ["BackwardResult", "build_backward"]


@dataclass
class BackwardResult:
    """The differentiated program, its saved-buffer spec, and the grad map."""
    prog: TProgram
    #: forward buffers the backward program reads (State Stack contents)
    saved: list[str] = field(default_factory=list)
    #: fwd input buffer -> bwd output buffer holding its gradient
    grad_map: dict[str, str] = field(default_factory=dict)


class _BwdBuilder:
    def __init__(self, fwd: TProgram, widths: dict[str, str]) -> None:
        self.fwd = fwd
        self.widths = dict(widths)
        self.prog = TProgram(f"{fwd.name}_bwd")
        self._tmp = itertools.count()
        self._const_cache: dict[float, str] = {}
        self.grads: dict[str, str] = {}

    def fresh(self) -> str:
        return f"g{next(self._tmp)}"

    def emit(self, kind: str, ins: tuple[str, ...], space: str, width: str, **attrs) -> str:
        out = self.fresh()
        self.prog.ops.append(TOp(kind, out, ins, attrs))
        self.prog.spaces[out] = space
        self.widths[out] = width
        return out

    def const(self, value: float) -> str:
        buf = self._const_cache.get(value)
        if buf is None:
            buf = f"gc{next(self._tmp)}"
            self.prog.consts[buf] = float(value)
            self.prog.spaces[buf] = "scalar"
            self.widths[buf] = "s"
            self._const_cache[value] = buf
        return buf

    def use_fwd(self, name: str) -> str:
        """Reference a forward-pass value inside the backward program."""
        if name in self.fwd.consts:
            return self.const(self.fwd.consts[name])
        if name not in self.prog.inputs:
            self.prog.inputs[name] = ("saved", name)
            self.prog.spaces[name] = self.fwd.spaces[name]
        return name

    def space_of(self, fwd_buf: str) -> str:
        return self.fwd.spaces[fwd_buf]

    def accumulate(self, fwd_buf: str, grad_buf: str) -> None:
        if self.space_of(fwd_buf) == "scalar":
            return  # constants take no gradient
        prev = self.grads.get(fwd_buf)
        if prev is None:
            self.grads[fwd_buf] = grad_buf
        else:
            space = self.fwd.spaces[fwd_buf]
            width = self.widths[prev]
            self.grads[fwd_buf] = self.emit("ew", (prev, grad_buf), space, width, op="add")

    def unbroadcast(self, grad_buf: str, operand: str) -> str:
        """Column-sum the gradient when the operand is scalar-width but the
        grad is vector-width (static broadcast adjoint)."""
        if self.space_of(operand) != "node":
            return grad_buf
        if self.widths[operand] == "s" and self.widths[grad_buf] == "v":
            return self.emit("colsum", (grad_buf,), "node", "s")
        return grad_buf

    # ------------------------------------------------------------------
    def run(self, wrt: set[str]) -> BackwardResult:
        out_buf = self.fwd.outputs[0]
        self.prog.inputs["g_out"] = ("grad", out_buf)
        self.prog.spaces["g_out"] = "node"
        self.widths["g_out"] = self.widths[out_buf]
        self.grads[out_buf] = "g_out"

        for op in reversed(self.fwd.ops):
            g = self.grads.get(op.out)
            if g is None:
                continue
            self._vjp(op, g)

        grad_map: dict[str, str] = {}
        for buf in self.fwd.inputs:
            if buf in wrt and buf in self.grads:
                grad_map[buf] = self.grads[buf]
        self.prog.outputs = list(grad_map.values())
        _dce(self.prog)
        saved = [
            name
            for name, (kind, _) in self.prog.inputs.items()
            if kind == "saved"
        ]
        self.prog.validate()
        return BackwardResult(self.prog, saved, grad_map)

    # ------------------------------------------------------------------
    def _vjp(self, op: TOp, g: str) -> None:
        kind = op.kind
        if kind == "ew" and len(op.ins) == 1:
            self._vjp_unary(op, g)
        elif kind == "ew":
            self._vjp_binary(op, g)
        elif kind == "spmm":
            w, x = op.ins
            direction = op.attrs.get("direction", "in")
            w_val = IMPLICIT_ONES if w == IMPLICIT_ONES else self.use_fwd(w)
            gx = self.emit("spmm_T", (w_val, g), "node", self.widths[x], direction=direction)
            self.accumulate(x, gx)
            if w != IMPLICIT_ONES:
                gw = self.emit(
                    "edge_dot", (self.use_fwd(x), g), "edge", "s", direction=direction
                )
                self.accumulate(w, gw)
        elif kind == "segment_sum":
            (w,) = op.ins
            self.accumulate(w, self.emit("gather_dst", (g,), "edge", "s"))
        elif kind == "scatter_src":
            (w,) = op.ins
            self.accumulate(w, self.emit("gather_src", (g,), "edge", "s"))
        elif kind == "gather_src":
            (x,) = op.ins
            self.accumulate(x, self.emit("scatter_src", (g,), "node", "s"))
        elif kind == "gather_dst":
            (x,) = op.ins
            self.accumulate(x, self.emit("segment_sum_dst", (g,), "node", "s"))
        elif kind == "edge_softmax":
            (z,) = op.ins
            alpha = self.use_fwd(op.out)
            self.accumulate(z, self.emit("edge_softmax_bwd", (alpha, g), "edge", "s"))
        elif kind == "agg_max":
            (x,) = op.ins
            gx = self.emit(
                "agg_max_bwd",
                (self.use_fwd(x), self.use_fwd(op.out), g),
                "node",
                self.widths[x],
            )
            self.accumulate(x, gx)
        elif kind in ("in_deg", "in_deg_clamped", "out_deg", "out_deg_clamped"):
            pass  # structural, no gradient
        else:  # pragma: no cover - new op kinds must add a rule
            raise CompileError(f"no VJP rule for op kind {kind!r}")

    def _vjp_unary(self, op: TOp, g: str) -> None:
        (a,) = op.ins
        space = self.space_of(a)
        width = self.widths.get(a, "s")
        ew = op.attrs["op"]
        if ew == "neg":
            gi = self.emit("ew", (g,), space, width, op="neg")
        elif ew == "exp":
            gi = self.emit("ew", (g, self.use_fwd(op.out)), space, width, op="mul")
        elif ew == "log":
            gi = self.emit("ew", (g, self.use_fwd(a)), space, width, op="div")
        elif ew == "tanh":
            out = self.use_fwd(op.out)
            t = self.emit("ew", (out, out), space, width, op="mul")
            u = self.emit("ew", (self.const(1.0), t), space, width, op="sub")
            gi = self.emit("ew", (g, u), space, width, op="mul")
        elif ew == "sigmoid":
            out = self.use_fwd(op.out)
            u = self.emit("ew", (self.const(1.0), out), space, width, op="sub")
            t = self.emit("ew", (out, u), space, width, op="mul")
            gi = self.emit("ew", (g, t), space, width, op="mul")
        elif ew == "relu":
            mask = self.emit("relu_mask", (self.use_fwd(op.out),), space, width)
            gi = self.emit("ew", (g, mask), space, width, op="mul")
        elif ew == "leaky_relu":
            mask = self.emit(
                "leaky_mask",
                (self.use_fwd(a),),
                space,
                width,
                slope=op.attrs.get("slope", 0.01),
            )
            gi = self.emit("ew", (g, mask), space, width, op="mul")
        elif ew == "recip":
            out = self.use_fwd(op.out)
            t = self.emit("ew", (out, out), space, width, op="mul")
            u = self.emit("ew", (g, t), space, width, op="mul")
            gi = self.emit("ew", (u,), space, width, op="neg")
        else:  # pragma: no cover
            raise CompileError(f"no VJP rule for unary {ew!r}")
        self.accumulate(a, gi)

    def _vjp_binary(self, op: TOp, g: str) -> None:
        a, b = op.ins
        ew = op.attrs["op"]
        g_width = self.widths[g]
        g_space = self.prog.spaces[g]
        if ew == "add":
            self.accumulate(a, self.unbroadcast(g, a))
            self.accumulate(b, self.unbroadcast(g, b))
        elif ew == "sub":
            self.accumulate(a, self.unbroadcast(g, a))
            nb = self.emit("ew", (g,), g_space, g_width, op="neg")
            self.accumulate(b, self.unbroadcast(nb, b))
        elif ew == "mul":
            if self.space_of(a) != "scalar":
                ga = self.emit("ew", (g, self.use_fwd(b)), g_space, g_width, op="mul")
                self.accumulate(a, self.unbroadcast(ga, a))
            if self.space_of(b) != "scalar":
                gb = self.emit("ew", (g, self.use_fwd(a)), g_space, g_width, op="mul")
                self.accumulate(b, self.unbroadcast(gb, b))
        elif ew == "div":
            if self.space_of(a) != "scalar":
                ga = self.emit("ew", (g, self.use_fwd(b)), g_space, g_width, op="div")
                self.accumulate(a, self.unbroadcast(ga, a))
            if self.space_of(b) != "scalar":
                # out = a/b ⇒ d/db = -out/b
                t = self.emit("ew", (g, self.use_fwd(op.out)), g_space, g_width, op="mul")
                u = self.emit("ew", (t, self.use_fwd(b)), g_space, g_width, op="div")
                gb = self.emit("ew", (u,), g_space, g_width, op="neg")
                self.accumulate(b, self.unbroadcast(gb, b))
        else:  # pragma: no cover
            raise CompileError(f"no VJP rule for binary {ew!r}")


def _dce(prog: TProgram) -> None:
    """Drop ops (and unused inputs) not reachable from the outputs."""
    needed = set(prog.outputs)
    kept: list[TOp] = []
    for op in reversed(prog.ops):
        if op.out in needed:
            kept.append(op)
            needed.update(n for n in op.ins if n != IMPLICIT_ONES)
    prog.ops = list(reversed(kept))
    prog.inputs = {k: v for k, v in prog.inputs.items() if k in needed}
    prog.consts = {k: v for k, v in prog.consts.items() if k in needed}


def build_backward(
    fwd: TProgram,
    widths: dict[str, str],
    wrt: set[str] | None = None,
) -> BackwardResult:
    """Differentiate a forward tensor program.

    ``wrt`` selects which forward *input buffers* receive gradients
    (default: all node and edge feature inputs).
    """
    if len(fwd.outputs) != 1:
        raise CompileError("backward construction expects a single-output forward program")
    if wrt is None:
        wrt = set(fwd.inputs)
    return _BwdBuilder(fwd, widths).run(wrt)
