"""Optimization passes over tensor programs.

* :func:`cse` — common-subexpression elimination (identical kind/inputs/
  attrs compute once).
* :func:`dce` — drop ops and inputs unreachable from the outputs.
* :func:`saved_analysis` — report the backward program's saved-buffer set
  against the full forward buffer inventory; the difference is the memory
  the State Stack optimization avoids retaining per timestamp, and any
  saved read *not* produced by the forward program lands in ``missing`` —
  the ``F_b ⊆ F_f`` State-Stack safety condition the verifier turns into
  an ``STG021`` error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.tir import IMPLICIT_ONES, TOp, TProgram

__all__ = ["cse", "dce", "saved_analysis", "SavedAnalysis"]


def cse(prog: TProgram) -> int:
    """Deduplicate structurally identical ops; returns ops removed."""
    canon: dict[str, str] = {}  # buffer -> canonical buffer
    seen: dict[tuple, str] = {}
    kept: list[TOp] = []

    def resolve(name: str) -> str:
        return canon.get(name, name)

    for op in prog.ops:
        ins = tuple(resolve(n) for n in op.ins)
        key = (op.kind, ins, tuple(sorted(op.attrs.items())))
        existing = seen.get(key)
        if existing is not None:
            canon[op.out] = existing
        else:
            seen[key] = op.out
            kept.append(TOp(op.kind, op.out, ins, op.attrs))
    removed = len(prog.ops) - len(kept)
    prog.ops = kept
    prog.outputs = [resolve(o) for o in prog.outputs]
    return removed


def dce(prog: TProgram) -> int:
    """Remove ops/inputs/consts not reachable from outputs; returns ops removed."""
    needed = set(prog.outputs)
    kept: list[TOp] = []
    for op in reversed(prog.ops):
        if op.out in needed:
            kept.append(op)
            needed.update(n for n in op.ins if n != IMPLICIT_ONES)
    removed = len(prog.ops) - len(kept)
    prog.ops = list(reversed(kept))
    prog.inputs = {k: v for k, v in prog.inputs.items() if k in needed}
    prog.consts = {k: v for k, v in prog.consts.items() if k in needed}
    return removed


@dataclass
class SavedAnalysis:
    """What the backward pass needs vs. what a naive backend would retain."""

    saved: list[str]
    all_forward_buffers: list[str]
    #: saved reads the forward program never produces — the F_b ⊆ F_f
    #: State-Stack safety condition is violated iff this is non-empty
    #: (the verifier reports each entry as STG021)
    missing: list[str] = field(default_factory=list)

    @property
    def pruned(self) -> list[str]:
        """Forward buffers the optimization avoids retaining."""
        return [b for b in self.all_forward_buffers if b not in set(self.saved)]

    @property
    def state_stack_safe(self) -> bool:
        """True when every saved read is produced by the forward program."""
        return not self.missing

    def summary(self) -> str:
        """One-line saved-vs-pruned report."""
        text = (
            f"state stack keeps {len(self.saved)}/{len(self.all_forward_buffers)} "
            f"forward buffers: {self.saved} (pruned: {self.pruned})"
        )
        if self.missing:
            text += f" [UNSAFE: saved-but-never-produced: {self.missing}]"
        return text


def saved_analysis(fwd: TProgram, bwd: TProgram) -> SavedAnalysis:
    """Compare the backward program's reads against all forward buffers."""
    saved = [name for name, (kind, _) in bwd.inputs.items() if kind == "saved"]
    all_buffers = list(fwd.inputs) + [op.out for op in fwd.ops]
    produced = set(all_buffers)
    missing = [name for name in saved if name not in produced]
    return SavedAnalysis(saved=saved, all_forward_buffers=all_buffers, missing=missing)
