"""Native (machine-code) CSR aggregation kernels for the compiled engine.

The Seastar design in the paper wins its speed from *compiled* vertex-centric
kernels; :class:`~repro.core.engine.CompiledEngine` is our analogue of that
tier.  This module supplies its machine-code inner loops: the CSR
gather/scatter-reduce primitives (``spmm``/``spmm_T``, ``segment_sum``,
``scatter_src``, ``gather_src``/``gather_dst``) re-implemented as tight
sequential loops and compiled to native code through one of two toolchains:

* **numba** — ``@njit``-compiled loops (LLVM), picked when :mod:`numba`
  imports cleanly.
* **c** — a small C source built with the system C compiler
  (``cc -O2 -shared -fPIC``) and bound through :mod:`cffi` in ABI mode
  (plain :mod:`ctypes` when cffi is unavailable).

Toolchain selection is process-wide and memoized (:func:`native_backend`);
``REPRO_NATIVE`` overrides it (``auto``/``numba``/``c``/``none``).  Whatever
is selected must first pass a **bitwise self-test** against the NumPy/SciPy
reference primitives in :mod:`repro.compiler.runtime` — the differential
harness demands that the compiled engine's outputs equal the interpreter's
*bitwise*, so a toolchain that cannot reproduce scipy's accumulation order
exactly is rejected, not papered over.  The loops here are written to match
that order: sequential float32 accumulation per CSR row (scipy's
``csr_matvec(s)``), float64 running prefix for ``segment_sum`` (NumPy's
``cumsum(dtype=float64)``), float64 accumulators for ``scatter_src``
(NumPy's ``bincount``).  Degree-ordered SpMM needs no special handling: row
permutation only reorders row *processing*, never a row's own accumulation,
so the per-vertex results are bit-identical either way.

**Cross-timestamp fusion.**  Each generated compiled driver starts with
``G = native_graph(ctx)``: the packed, contiguity-checked structural arrays
for one snapshot.  The pack is cached per :class:`GraphContext` (weakly, so
lifetime follows the executor's context LRU).  When the snapshot identity is
unchanged across timestamps the executor reuses the context, ``native_graph``
hits, and the ``graph_update`` re-pack is fused away — the
``compiled_fusion_hits`` / ``compiled_fusion_misses`` profiler counters make
the fusion rate observable per run.

Every ``nat_*`` primitive checks argument eligibility (dtype float32,
C-contiguous, supported rank) per call and silently degrades to the
reference NumPy primitive otherwise — identical numbers, just slower — so a
compiled plan never produces wrong answers for an exotic operand.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import weakref

import numpy as np

from repro.compiler.runtime import (
    GraphContext,
    gather_dst,
    gather_src,
    scatter_src,
    segment_sum,
    spmm,
)

__all__ = [
    "NATIVE_NAMESPACE",
    "NativeGraph",
    "native_backend",
    "native_graph",
    "reset_native_backend",
]


# ---------------------------------------------------------------------------
# C toolchain
# ---------------------------------------------------------------------------
#: The C inner loops.  Accumulation orders deliberately mirror the SciPy /
#: NumPy reference primitives (see module docstring) so results are bitwise
#: identical; the self-test enforces this before the backend is accepted.
_C_SOURCE = """
#include <stdint.h>
#include <stdlib.h>

/* out[i] = sum_j w[perm ? perm[j] : j] * x[col[j]] over row i's slice.
 * w == NULL means implicit ones.  Sequential float32 accumulation per row,
 * matching scipy's csr_matvec. */
void spmm_vec_f32(const int64_t *rowp, const int64_t *col, const int64_t *perm,
                  const float *w, const float *x, float *out, int64_t n) {
    for (int64_t i = 0; i < n; i++) {
        float acc = 0.0f;
        for (int64_t j = rowp[i]; j < rowp[i + 1]; j++) {
            float wj = w ? w[perm ? perm[j] : j] : 1.0f;
            acc += wj * x[col[j]];
        }
        out[i] = acc;
    }
}

/* Row-major (n, f) payload: zero the output row, then one axpy per edge —
 * scipy's csr_matvecs accumulation order. */
void spmm_mat_f32(const int64_t *rowp, const int64_t *col, const int64_t *perm,
                  const float *w, const float *x, float *out,
                  int64_t n, int64_t f) {
    for (int64_t i = 0; i < n; i++) {
        float *row = out + i * f;
        for (int64_t k = 0; k < f; k++) row[k] = 0.0f;
        for (int64_t j = rowp[i]; j < rowp[i + 1]; j++) {
            float wj = w ? w[perm ? perm[j] : j] : 1.0f;
            const float *src = x + col[j] * f;
            for (int64_t k = 0; k < f; k++) row[k] += wj * src[k];
        }
    }
}

/* Per-destination sum of edge scalars via a float64 running prefix: CSR row
 * offsets are monotone over 0..E, so out[i] = cs[end] - cs[start] with the
 * same float64 prefix values numpy's cumsum produces. */
void segment_sum_f32(const int64_t *rowp, const float *w, float *out, int64_t n) {
    double acc = 0.0;
    int64_t e = 0;
    for (int64_t i = 0; i < n; i++) {
        double start = acc;
        int64_t end = rowp[i + 1];
        for (; e < end; e++) acc += (double)w[e];
        out[i] = (float)(acc - start);
    }
}

/* Per-source sum of edge scalars with float64 accumulators (numpy bincount
 * semantics).  Returns nonzero if the scratch allocation failed. */
int scatter_sum_f32(const int64_t *idx, const float *g, float *out,
                    int64_t n, int64_t e) {
    double *acc = (double *)calloc((size_t)(n > 0 ? n : 1), sizeof(double));
    if (!acc) return 1;
    for (int64_t j = 0; j < e; j++) acc[idx[j]] += (double)g[j];
    for (int64_t i = 0; i < n; i++) out[i] = (float)acc[i];
    free(acc);
    return 0;
}

void gather_vec_f32(const int64_t *idx, const float *x, float *out, int64_t e) {
    for (int64_t j = 0; j < e; j++) out[j] = x[idx[j]];
}

void gather_mat_f32(const int64_t *idx, const float *x, float *out,
                    int64_t e, int64_t f) {
    for (int64_t j = 0; j < e; j++) {
        const float *src = x + idx[j] * f;
        float *dst = out + j * f;
        for (int64_t k = 0; k < f; k++) dst[k] = src[k];
    }
}
"""

_C_DECLS = """
void spmm_vec_f32(const long long *, const long long *, const long long *,
                  const float *, const float *, float *, long long);
void spmm_mat_f32(const long long *, const long long *, const long long *,
                  const float *, const float *, float *, long long, long long);
void segment_sum_f32(const long long *, const float *, float *, long long);
int scatter_sum_f32(const long long *, const float *, float *, long long, long long);
void gather_vec_f32(const long long *, const float *, float *, long long);
void gather_mat_f32(const long long *, const float *, float *, long long, long long);
"""


class _CBackend:
    """cffi/ctypes bindings over the cc-built shared library."""

    name = "c"

    def __init__(self, lib, ffi=None) -> None:
        self._lib = lib
        self._ffi = ffi  # None → ctypes bindings

    # -- pointer plumbing ------------------------------------------------
    def _ptr(self, arr: np.ndarray | None, ctype: str):
        if self._ffi is not None:
            if arr is None:
                return self._ffi.NULL
            return self._ffi.cast(ctype, arr.ctypes.data)
        import ctypes

        return None if arr is None else ctypes.c_void_p(arr.ctypes.data)

    def _i(self, value: int):
        if self._ffi is not None:
            return int(value)
        import ctypes

        return ctypes.c_longlong(int(value))

    # -- kernels ---------------------------------------------------------
    def spmm(self, rowp, col, perm, w, x, out) -> None:
        ip, fp = "const long long *", "const float *"
        n = self._i(rowp.shape[0] - 1)
        if x.ndim == 1:
            self._lib.spmm_vec_f32(
                self._ptr(rowp, ip), self._ptr(col, ip), self._ptr(perm, ip),
                self._ptr(w, fp), self._ptr(x, fp), self._ptr(out, "float *"), n,
            )
        else:
            self._lib.spmm_mat_f32(
                self._ptr(rowp, ip), self._ptr(col, ip), self._ptr(perm, ip),
                self._ptr(w, fp), self._ptr(x, fp), self._ptr(out, "float *"),
                n, self._i(x.shape[1]),
            )

    def segment_sum(self, rowp, w, out) -> None:
        self._lib.segment_sum_f32(
            self._ptr(rowp, "const long long *"), self._ptr(w, "const float *"),
            self._ptr(out, "float *"), self._i(rowp.shape[0] - 1),
        )

    def scatter_sum(self, idx, g, out, n) -> bool:
        rc = self._lib.scatter_sum_f32(
            self._ptr(idx, "const long long *"), self._ptr(g, "const float *"),
            self._ptr(out, "float *"), self._i(n), self._i(idx.shape[0]),
        )
        return int(rc) == 0

    def gather(self, idx, x, out) -> None:
        ip, fp = "const long long *", "const float *"
        if x.ndim == 1:
            self._lib.gather_vec_f32(
                self._ptr(idx, ip), self._ptr(x, fp), self._ptr(out, "float *"),
                self._i(idx.shape[0]),
            )
        else:
            self._lib.gather_mat_f32(
                self._ptr(idx, ip), self._ptr(x, fp), self._ptr(out, "float *"),
                self._i(idx.shape[0]), self._i(x.shape[1]),
            )


def _build_c_backend() -> _CBackend | None:
    """Compile the C kernels with the system compiler and bind them."""
    cc = shutil.which(os.environ.get("CC") or "cc") or shutil.which("gcc")
    if cc is None:
        return None
    tmpdir = tempfile.mkdtemp(prefix="repro_native_")
    src = os.path.join(tmpdir, "repro_native.c")
    sofile = os.path.join(tmpdir, "repro_native.so")
    try:
        with open(src, "w") as fh:
            fh.write(_C_SOURCE)
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", sofile, src],
            capture_output=True, timeout=120,
        )
        if proc.returncode != 0:
            return None
        try:
            import cffi

            ffi = cffi.FFI()
            ffi.cdef(_C_DECLS)
            lib = ffi.dlopen(sofile)
            backend = _CBackend(lib, ffi)
        except ImportError:
            import ctypes

            lib = ctypes.CDLL(sofile)
            lib.scatter_sum_f32.restype = ctypes.c_int
            backend = _CBackend(lib, None)
        return backend
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        # The library stays mapped after dlopen; the build artifacts can go.
        shutil.rmtree(tmpdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# Numba toolchain
# ---------------------------------------------------------------------------
class _NumbaBackend:
    """``@njit``-compiled loops, laid out identically to the C kernels.

    Optional operands (weights, the backward-CSR weight permutation) are
    passed as empty arrays plus a flag — numba specializes on array types,
    not on None.  ``fastmath`` stays off so LLVM cannot reassociate or
    contract the accumulations; the self-test verifies bitwise identity
    regardless.
    """

    name = "numba"

    def __init__(self, fns: dict) -> None:
        self._f = fns
        self._empty_w = np.empty(0, dtype=np.float32)
        self._empty_p = np.empty(0, dtype=np.int64)

    def spmm(self, rowp, col, perm, w, x, out) -> None:
        has_w, has_p = w is not None, perm is not None
        w = self._empty_w if w is None else w
        perm = self._empty_p if perm is None else perm
        key = "spmm_vec" if x.ndim == 1 else "spmm_mat"
        self._f[key](rowp, col, perm, w, x, out, has_w, has_p)

    def segment_sum(self, rowp, w, out) -> None:
        self._f["segment_sum"](rowp, w, out)

    def scatter_sum(self, idx, g, out, n) -> bool:
        self._f["scatter_sum"](idx, g, out, int(n))
        return True

    def gather(self, idx, x, out) -> None:
        self._f["gather_vec" if x.ndim == 1 else "gather_mat"](idx, x, out)


def _build_numba_backend() -> _NumbaBackend | None:
    try:
        import numba
    except Exception:
        return None

    jit = numba.njit(cache=False, fastmath=False)

    @jit
    def spmm_vec(rowp, col, perm, w, x, out, has_w, has_p):
        n = rowp.shape[0] - 1
        for i in range(n):
            acc = np.float32(0.0)
            for j in range(rowp[i], rowp[i + 1]):
                if has_w:
                    wj = w[perm[j]] if has_p else w[j]
                else:
                    wj = np.float32(1.0)
                acc += wj * x[col[j]]
            out[i] = acc

    @jit
    def spmm_mat(rowp, col, perm, w, x, out, has_w, has_p):
        n = rowp.shape[0] - 1
        f = x.shape[1]
        for i in range(n):
            for k in range(f):
                out[i, k] = np.float32(0.0)
            for j in range(rowp[i], rowp[i + 1]):
                if has_w:
                    wj = w[perm[j]] if has_p else w[j]
                else:
                    wj = np.float32(1.0)
                c = col[j]
                for k in range(f):
                    out[i, k] += wj * x[c, k]

    @jit
    def segment_sum(rowp, w, out):
        n = rowp.shape[0] - 1
        acc = 0.0
        e = 0
        for i in range(n):
            start = acc
            end = rowp[i + 1]
            while e < end:
                acc += np.float64(w[e])
                e += 1
            out[i] = np.float32(acc - start)

    @jit
    def scatter_sum(idx, g, out, n):
        acc = np.zeros(n, dtype=np.float64)
        for j in range(idx.shape[0]):
            acc[idx[j]] += np.float64(g[j])
        for i in range(n):
            out[i] = np.float32(acc[i])

    @jit
    def gather_vec(idx, x, out):
        for j in range(idx.shape[0]):
            out[j] = x[idx[j]]

    @jit
    def gather_mat(idx, x, out):
        f = x.shape[1]
        for j in range(idx.shape[0]):
            s = idx[j]
            for k in range(f):
                out[j, k] = x[s, k]

    fns = {
        "spmm_vec": spmm_vec,
        "spmm_mat": spmm_mat,
        "segment_sum": segment_sum,
        "scatter_sum": scatter_sum,
        "gather_vec": gather_vec,
        "gather_mat": gather_mat,
    }
    try:
        backend = _NumbaBackend(fns)
        # Force compilation now (and surface any lowering error) on a
        # trivial input; the bitwise self-test follows in _resolve_backend.
        rowp = np.array([0, 1], dtype=np.int64)
        col = np.zeros(1, dtype=np.int64)
        out = np.empty(1, dtype=np.float32)
        backend.spmm(rowp, col, None, None, np.ones(1, dtype=np.float32), out)
    except Exception:
        return None
    return backend


# ---------------------------------------------------------------------------
# Bitwise self-test and backend resolution
# ---------------------------------------------------------------------------
def _self_test(backend) -> bool:
    """Native kernels must reproduce the NumPy/SciPy reference *bitwise*."""
    import scipy.sparse as sp

    rng = np.random.default_rng(7)
    n, e, f = 37, 180, 5
    dst = np.sort(rng.integers(0, n, size=e)).astype(np.int64)
    col = rng.integers(0, n, size=e).astype(np.int64)
    rowp = np.zeros(n + 1, dtype=np.int64)
    np.add.at(rowp, dst + 1, 1)
    rowp = np.cumsum(rowp).astype(np.int64)
    w = rng.standard_normal(e).astype(np.float32)
    perm = rng.permutation(e).astype(np.int64)
    x1 = rng.standard_normal(n).astype(np.float32)
    x2 = np.ascontiguousarray(rng.standard_normal((n, f)).astype(np.float32))
    try:
        for weights, p in ((None, None), (w, None), (w, perm)):
            data = np.ones(e, np.float32) if weights is None else (
                weights if p is None else weights[p]
            )
            mat = sp.csr_matrix((data, col, rowp), shape=(n, n))
            for x in (x1, x2):
                ref = mat @ x
                out = np.empty_like(ref)
                backend.spmm(rowp, col, p, weights, x, out)
                if not np.array_equal(out, ref):
                    return False
        cs = np.concatenate([[0.0], np.cumsum(w, dtype=np.float64)])
        ref = (cs[rowp[1:]] - cs[rowp[:-1]]).astype(np.float32)
        out = np.empty(n, dtype=np.float32)
        backend.segment_sum(rowp, w, out)
        if not np.array_equal(out, ref):
            return False
        ref = np.bincount(col, weights=w, minlength=n).astype(np.float32)
        out = np.empty(n, dtype=np.float32)
        if not backend.scatter_sum(col, w, out, n) or not np.array_equal(out, ref):
            return False
        for x in (x1, x2):
            ref = x[col]
            out = np.empty_like(ref)
            backend.gather(col, x, out)
            if not np.array_equal(out, ref):
                return False
    except Exception:
        return False
    return True


_UNRESOLVED = object()
_BACKEND = _UNRESOLVED  # memoized backend object (or None)


def _resolve_backend():
    mode = os.environ.get("REPRO_NATIVE", "auto").strip().lower() or "auto"
    if mode in ("none", "off", "0"):
        return None
    builders = {"numba": _build_numba_backend, "c": _build_c_backend}
    if mode == "auto":
        order = ("numba", "c")
    elif mode in builders:
        order = (mode,)
    else:
        order = ("numba", "c")
    for name in order:
        backend = builders[name]()
        if backend is not None and _self_test(backend):
            return backend
    return None


def _backend():
    """The resolved native backend object (None when no toolchain)."""
    global _BACKEND
    if _BACKEND is _UNRESOLVED:
        _BACKEND = _resolve_backend()
    return _BACKEND


def native_backend() -> str | None:
    """The active native toolchain: ``"numba"``, ``"c"``, or None.

    Resolution (toolchain probe, C build, bitwise self-test) runs once per
    process on first call and is memoized; ``REPRO_NATIVE`` selects or
    disables a toolchain explicitly.
    """
    backend = _backend()
    return None if backend is None else backend.name


def reset_native_backend() -> None:
    """Forget the memoized toolchain and packed-graph cache (tests only)."""
    global _BACKEND
    _BACKEND = _UNRESOLVED
    _GRAPH_CACHE.clear()


# ---------------------------------------------------------------------------
# Packed graph arrays + the cross-timestamp fusion cache
# ---------------------------------------------------------------------------
class NativeGraph:
    """One snapshot's structural arrays, packed for native kernels.

    Guarantees int64, C-contiguous index arrays (the ``GraphContext`` arrays
    already are; packing is a cheap validation in the common case) so the
    native loops can consume raw pointers without per-call checks.
    """

    __slots__ = (
        "__weakref__", "ctx", "num_nodes", "num_edges",
        "fwd_row", "fwd_col", "bwd_row", "bwd_col", "bwd_to_fwd", "dst_per_edge",
    )

    def __init__(self, ctx: GraphContext) -> None:
        self.ctx = ctx
        self.num_nodes = int(ctx.num_nodes)
        self.num_edges = int(ctx.num_edges)
        self.fwd_row = _as_index(ctx.fwd_row)
        self.fwd_col = _as_index(ctx.fwd_col)
        self.bwd_row = _as_index(ctx.bwd_row)
        self.bwd_col = _as_index(ctx.bwd_col)
        self.bwd_to_fwd = _as_index(ctx.bwd_to_fwd)
        self.dst_per_edge = _as_index(ctx.dst_per_edge)


def _as_index(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr, dtype=np.int64)


#: ctx → NativeGraph; weak keys tie pack lifetime to the executor's context
#: LRU, which reuses one GraphContext per unchanged snapshot identity.
_GRAPH_CACHE: "weakref.WeakKeyDictionary[GraphContext, NativeGraph]" = (
    weakref.WeakKeyDictionary()
)


def native_graph(ctx: GraphContext) -> NativeGraph:
    """The packed arrays for ``ctx`` — the cross-timestamp fusion point.

    A hit means the snapshot identity is unchanged since the last launch
    (the executor reused the context), so the ``graph_update`` re-pack is
    fused away entirely; counted as ``compiled_fusion_hits`` /
    ``compiled_fusion_misses`` on the device profiler.
    """
    from repro.device import current_device

    packed = _GRAPH_CACHE.get(ctx)
    profiler = current_device().profiler
    if packed is None:
        packed = NativeGraph(ctx)
        _GRAPH_CACHE[ctx] = packed
        profiler.count("compiled_fusion_misses")
    else:
        profiler.count("compiled_fusion_hits")
    return packed


# ---------------------------------------------------------------------------
# The nat_* primitives generated compiled drivers call
# ---------------------------------------------------------------------------
def _eligible_payload(x) -> bool:
    return (
        isinstance(x, np.ndarray)
        and x.dtype == np.float32
        and x.ndim in (1, 2)
        and x.flags.c_contiguous
    )


def _eligible_edge(w) -> bool:
    return (
        isinstance(w, np.ndarray)
        and w.dtype == np.float32
        and w.ndim == 1
        and w.flags.c_contiguous
    )


def nat_spmm(G: NativeGraph, w, x, direction: str = "in"):
    """Native CSR aggregation; falls back to :func:`repro.compiler.runtime.spmm`
    for ineligible operands (wrong dtype/rank/layout) or a missing toolchain."""
    backend = _backend()
    if backend is None or not _eligible_payload(x) or (w is not None and not _eligible_edge(w)):
        return spmm(G.ctx, w, x, direction)
    if direction == "in":
        rowp, col, perm = G.fwd_row, G.fwd_col, None
    else:
        rowp, col = G.bwd_row, G.bwd_col
        perm = G.bwd_to_fwd if w is not None else None
    out = np.empty_like(x)
    backend.spmm(rowp, col, perm, w, x, out)
    return out


def nat_spmm_T(G: NativeGraph, w, g, direction: str = "in"):
    """Adjoint of :func:`nat_spmm` — the opposite CSR orientation."""
    return nat_spmm(G, w, g, direction="out" if direction == "in" else "in")


def nat_segment_sum(G: NativeGraph, w):
    """Native per-destination edge-scalar reduction (float64 prefix)."""
    backend = _backend()
    if backend is None or not _eligible_edge(w):
        return segment_sum(G.ctx, w)
    out = np.empty(G.num_nodes, dtype=np.float32)
    backend.segment_sum(G.fwd_row, w, out)
    return out


def nat_segment_sum_dst(G: NativeGraph, g):
    """Alias of :func:`nat_segment_sum` (gradient of gather_dst)."""
    return nat_segment_sum(G, g)


def nat_scatter_src(G: NativeGraph, g):
    """Native per-source edge-scalar reduction (float64 accumulators)."""
    backend = _backend()
    if backend is None or not _eligible_edge(g):
        return scatter_src(G.ctx, g)
    out = np.empty(G.num_nodes, dtype=np.float32)
    if not backend.scatter_sum(G.fwd_col, g, out, G.num_nodes):
        return scatter_src(G.ctx, g)
    return out


def nat_gather_src(G: NativeGraph, x):
    """Native per-edge replication from source vertices."""
    backend = _backend()
    if backend is None or not _eligible_payload(x):
        return gather_src(G.ctx, x)
    shape = (G.num_edges,) if x.ndim == 1 else (G.num_edges, x.shape[1])
    out = np.empty(shape, dtype=np.float32)
    backend.gather(G.fwd_col, x, out)
    return out


def nat_gather_dst(G: NativeGraph, x):
    """Native per-edge replication from destination vertices."""
    backend = _backend()
    if backend is None or not _eligible_payload(x):
        return gather_dst(G.ctx, x)
    shape = (G.num_edges,) if x.ndim == 1 else (G.num_edges, x.shape[1])
    out = np.empty(shape, dtype=np.float32)
    backend.gather(G.dst_per_edge, x, out)
    return out


#: extra globals handed to compiled-driver modules (on top of the regular
#: RUNTIME_NAMESPACE, which still serves every non-aggregation op).
NATIVE_NAMESPACE = {
    "native_graph": native_graph,
    "nat_spmm": nat_spmm,
    "nat_spmm_T": nat_spmm_T,
    "nat_segment_sum": nat_segment_sum,
    "nat_segment_sum_dst": nat_segment_sum_dst,
    "nat_scatter_src": nat_scatter_src,
    "nat_gather_src": nat_gather_src,
    "nat_gather_dst": nat_gather_dst,
}
