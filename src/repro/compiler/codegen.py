"""Kernel source generation.

Emits Python source from tensor programs — the simulated-device analogue of
Seastar's CUDA codegen.  The source is genuine generated code: it is kept on
the :class:`~repro.device.kernel.CompiledKernel` for inspection, compiled
with ``compile()``/``exec`` (errors surface as real syntax/name errors), and
executed through the device's kernel launcher.

Two modes:

* **fused** (default) — the whole pass is a single kernel; intermediates
  live and die inside one launch, exactly like Seastar's fused kernels.
* **unfused** — one tiny kernel per tensor-IR op, launched individually
  (the fusion ablation: same math, per-op launch overhead and materialized
  intermediates).

A third flavour serves the compiled engine (``repro.core.engine
.CompiledEngine``): :func:`generate_compiled_forward_source` /
:func:`generate_compiled_backward_source` emit the same fused driver shape
but route the CSR aggregation ops through the native ``nat_*`` primitives of
:mod:`repro.compiler.native` (machine code via numba or cc/cffi) and open
with ``G = native_graph(ctx)`` — the cross-timestamp fusion point that
reuses the packed structural arrays while the snapshot identity is
unchanged.  Every other op keeps calling the regular runtime primitives, so
compiled drivers are bitwise-identical to the interpreter by construction.
"""

from __future__ import annotations

from repro.compiler.tir import IMPLICIT_ONES, TOp, TProgram
from repro.device.kernel import CompiledKernel

__all__ = [
    "generate_forward_source",
    "generate_backward_source",
    "generate_compiled_forward_source",
    "generate_compiled_backward_source",
    "compile_program",
    "compile_native_program",
    "generate_op_kernels",
]

_CTX_CALLS = {
    "spmm",
    "spmm_T",
    "segment_sum",
    "segment_sum_dst",
    "scatter_src",
    "gather_src",
    "gather_dst",
    "edge_softmax",
    "edge_softmax_bwd",
    "edge_dot",
    "agg_max",
    "agg_max_bwd",
    "in_deg",
    "in_deg_clamped",
    "out_deg",
    "out_deg_clamped",
    "ones_node",
    "segment_max",
}
_PLAIN_CALLS = {"colsum", "relu_mask", "leaky_mask"}

#: op kinds with a native (machine-code) implementation in repro.compiler.native;
#: compiled drivers route these through nat_* and leave the rest on the
#: regular runtime primitives.
_NATIVE_CALLS = {
    "spmm",
    "spmm_T",
    "segment_sum",
    "segment_sum_dst",
    "scatter_src",
    "gather_src",
    "gather_dst",
}


def _render_call(op: TOp) -> str:
    """One IR op as a runtime-primitive call expression."""
    args = ["None" if n == IMPLICIT_ONES else n for n in op.ins]
    if op.kind == "ew":
        fn = f"ew_{op.attrs['op']}"
        extra = [f"{k}={v!r}" for k, v in sorted(op.attrs.items()) if k != "op"]
        return f"{fn}({', '.join(args + extra)})"
    if op.kind in _CTX_CALLS:
        extra = [f"{k}={v!r}" for k, v in sorted(op.attrs.items())]
        return f"{op.kind}({', '.join(['ctx'] + args + extra)})"
    if op.kind in _PLAIN_CALLS:
        extra = [f"{k}={v!r}" for k, v in sorted(op.attrs.items())]
        return f"{op.kind}({', '.join(args + extra)})"
    raise ValueError(f"codegen: unknown op kind {op.kind!r}")


def _render_native_call(op: TOp) -> str:
    """One IR op for a compiled driver: native where available, runtime else."""
    if op.kind in _NATIVE_CALLS:
        args = ["None" if n == IMPLICIT_ONES else n for n in op.ins]
        extra = [f"{k}={v!r}" for k, v in sorted(op.attrs.items())]
        return f"nat_{op.kind}({', '.join(['G'] + args + extra)})"
    return _render_call(op)


def _uses_native(prog: TProgram) -> bool:
    return any(op.kind in _NATIVE_CALLS for op in prog.ops)


def _bind_lines(prog: TProgram, env_name: str) -> list[str]:
    lines = []
    for buf in prog.inputs:
        lines.append(f"    {buf} = {env_name}[{buf!r}]")
    for buf, value in prog.consts.items():
        lines.append(f"    {buf} = {value!r}")
    return lines


def generate_forward_source(prog: TProgram, saved: list[str], entry: str) -> str:
    """Forward kernel: ``entry(ctx, env) -> (out, saved_dict)``."""
    lines = [
        f"def {entry}(ctx, env):",
        # The docstring names the entry, not the display name, so source is
        # byte-identical across re-traces and the launcher can dedup it.
        f'    """Generated forward kernel {entry}."""',
    ]
    lines += _bind_lines(prog, "env")
    for op in prog.ops:
        lines.append(f"    {op.out} = {_render_call(op)}")
    saved_items = ", ".join(f"{name!r}: {name}" for name in saved)
    lines.append(f"    saved = {{{saved_items}}}")
    lines.append(f"    return {prog.outputs[0]}, saved")
    return "\n".join(lines) + "\n"


def generate_backward_source(prog: TProgram, grad_map: dict[str, str], entry: str) -> str:
    """Backward kernel: ``entry(ctx, g_out, saved) -> {input_buf: grad}``."""
    lines = [
        f"def {entry}(ctx, g_out, saved):",
        f'    """Generated backward kernel {entry}."""',
    ]
    for buf, (kind, _) in prog.inputs.items():
        if kind == "saved":
            lines.append(f"    {buf} = saved[{buf!r}]")
    for buf, value in prog.consts.items():
        lines.append(f"    {buf} = {value!r}")
    for op in prog.ops:
        lines.append(f"    {op.out} = {_render_call(op)}")
    grad_items = ", ".join(f"{inp!r}: {gbuf}" for inp, gbuf in grad_map.items())
    lines.append(f"    return {{{grad_items}}}")
    return "\n".join(lines) + "\n"


def generate_compiled_forward_source(prog: TProgram, saved: list[str], entry: str) -> str:
    """Forward driver for the compiled engine: ``entry(ctx, env) -> (out, saved)``.

    Same shape as :func:`generate_forward_source`, but aggregation ops call
    the native ``nat_*`` primitives against the packed ``G = native_graph(ctx)``
    arrays (the cross-timestamp fusion point).  The G binding is emitted only
    when the program actually aggregates.
    """
    lines = [
        f"def {entry}(ctx, env):",
        f'    """Generated compiled forward driver {entry}."""',
    ]
    if _uses_native(prog):
        lines.append("    G = native_graph(ctx)")
    lines += _bind_lines(prog, "env")
    for op in prog.ops:
        lines.append(f"    {op.out} = {_render_native_call(op)}")
    saved_items = ", ".join(f"{name!r}: {name}" for name in saved)
    lines.append(f"    saved = {{{saved_items}}}")
    lines.append(f"    return {prog.outputs[0]}, saved")
    return "\n".join(lines) + "\n"


def generate_compiled_backward_source(prog: TProgram, grad_map: dict[str, str], entry: str) -> str:
    """Backward driver for the compiled engine: ``entry(ctx, g_out, saved) -> grads``."""
    lines = [
        f"def {entry}(ctx, g_out, saved):",
        f'    """Generated compiled backward driver {entry}."""',
    ]
    if _uses_native(prog):
        lines.append("    G = native_graph(ctx)")
    for buf, (kind, _) in prog.inputs.items():
        if kind == "saved":
            lines.append(f"    {buf} = saved[{buf!r}]")
    for buf, value in prog.consts.items():
        lines.append(f"    {buf} = {value!r}")
    for op in prog.ops:
        lines.append(f"    {op.out} = {_render_native_call(op)}")
    grad_items = ", ".join(f"{inp!r}: {gbuf}" for inp, gbuf in grad_map.items())
    lines.append(f"    return {{{grad_items}}}")
    return "\n".join(lines) + "\n"


def compile_program(source: str, entry: str, meta: dict | None = None) -> CompiledKernel:
    """Compile generated source against the runtime namespace into a launchable kernel.

    Goes through the active device's :meth:`KernelLauncher.compile`, which
    deduplicates byte-identical generated source — identical kernels compile
    once per device no matter how many plans request them.
    """
    from repro.compiler.runtime import RUNTIME_NAMESPACE
    from repro.device import current_device

    return current_device().launcher.compile(
        source, entry, globals_extra=dict(RUNTIME_NAMESPACE), meta=meta
    )


def compile_native_program(source: str, entry: str, meta: dict | None = None) -> CompiledKernel:
    """Compile a generated compiled-engine driver.

    Same launcher path (and source-level dedup) as :func:`compile_program`,
    with the native ``nat_*`` primitives layered over the runtime namespace.
    """
    from repro.compiler.native import NATIVE_NAMESPACE
    from repro.compiler.runtime import RUNTIME_NAMESPACE
    from repro.device import current_device

    namespace = dict(RUNTIME_NAMESPACE)
    namespace.update(NATIVE_NAMESPACE)
    return current_device().launcher.compile(
        source, entry, globals_extra=namespace, meta=meta
    )


def generate_op_kernels(prog: TProgram, prefix: str) -> list[tuple[TOp, CompiledKernel]]:
    """Unfused mode: one launchable kernel per tensor-IR op."""
    kernels: list[tuple[TOp, CompiledKernel]] = []
    for i, op in enumerate(prog.ops):
        entry = f"{prefix}_op{i}_{op.kind}"
        params = ", ".join(n for n in op.ins if n != IMPLICIT_ONES)
        head = f"def {entry}(ctx, {params}):" if params else f"def {entry}(ctx):"
        # The implicit ones weight renders as a literal None argument, so it is not a param.
        source = "\n".join([head, f"    return {_render_call(op)}"]) + "\n"
        kernels.append((op, compile_program(source, entry, meta={"op": op.kind})))
    return kernels
