"""Tensor-IR interpreter: the compiler's differential-testing oracle.

Executes a :class:`~repro.compiler.tir.TProgram` directly, op by op,
against the same runtime primitives the generated kernels call — but with
no codegen, no ``exec``, no kernel cache.  Anything the interpreter and a
compiled kernel disagree on is by construction a codegen bug, which makes
this the reference semantics for the differential tests in
``tests/test_compiler_differential.py``.

Also handy interactively: ``trace_execution`` returns every intermediate
buffer for inspection.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.compiler.runtime import RUNTIME_NAMESPACE, GraphContext
from repro.compiler.tir import IMPLICIT_ONES, TOp, TProgram

__all__ = ["interpret_program", "trace_execution"]

_CTX_KINDS = {
    "spmm",
    "spmm_T",
    "segment_sum",
    "segment_sum_dst",
    "scatter_src",
    "gather_src",
    "gather_dst",
    "edge_softmax",
    "edge_softmax_bwd",
    "edge_dot",
    "agg_max",
    "agg_max_bwd",
    "in_deg",
    "in_deg_clamped",
    "out_deg",
    "out_deg_clamped",
    "ones_node",
    "segment_max",
}


def _eval_op(op: TOp, ctx: GraphContext, env: dict[str, Any]) -> Any:
    args = [None if n == IMPLICIT_ONES else env[n] for n in op.ins]
    if op.kind == "ew":
        fn = RUNTIME_NAMESPACE[f"ew_{op.attrs['op']}"]
        kwargs = {k: v for k, v in op.attrs.items() if k != "op"}
        return fn(*args, **kwargs)
    fn = RUNTIME_NAMESPACE.get(op.kind)
    if fn is None:
        raise ValueError(f"interpreter: unknown op kind {op.kind!r}")
    if op.kind in _CTX_KINDS:
        return fn(ctx, *args, **op.attrs)
    return fn(*args, **op.attrs)


def trace_execution(
    prog: TProgram,
    ctx: GraphContext,
    bindings: Mapping[str, np.ndarray],
) -> dict[str, Any]:
    """Run ``prog`` and return *every* buffer (inputs, consts, temps)."""
    env: dict[str, Any] = {}
    for buf in prog.inputs:
        if buf not in bindings:
            raise KeyError(f"interpreter: missing binding for input {buf!r}")
        env[buf] = bindings[buf]
    for buf, value in prog.consts.items():
        env[buf] = value
    for op in prog.ops:
        env[op.out] = _eval_op(op, ctx, env)
    return env


def interpret_program(
    prog: TProgram,
    ctx: GraphContext,
    bindings: Mapping[str, np.ndarray],
) -> list[Any]:
    """Evaluate ``prog`` and return its outputs in declaration order."""
    env = trace_execution(prog, ctx, bindings)
    return [env[name] for name in prog.outputs]
