"""Tensor-level IR: the linear program both codegen targets.

After lowering, a vertex program is a sequence of :class:`TOp` over named
buffers living in one of three *spaces*:

* ``node``  — arrays with first dimension N (features, payloads, outputs);
* ``edge``  — scalars per edge in canonical (forward-CSR position) order;
* ``scalar``— Python floats (folded constants).

The aggregation ops are where the graph enters:

=================  ===========================================================
``spmm``           ``out[v] = Σ_{e∈in(v)} w[e]·x[src[e]]`` (forward CSR);
                   ``w`` may be the literal ``"__ones__"``.
``spmm_T``         the transpose product over the backward CSR (gradient path)
``segment_sum``    edge scalars summed per destination
``segment_sum_dst``alias of segment_sum used by gradients of ``gather_dst``
``scatter_src``    edge scalars summed per *source* vertex
``gather_src``     node value replicated per edge from its source
``gather_dst``     node value replicated per edge from its destination
``edge_softmax``   softmax of an edge score over each vertex's in-edges
``edge_dot``       per-edge feature dot of two node-space values
``agg_max``        max-aggregation of a node payload over in-edges
=================  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TOp", "TProgram", "EW_UNARY", "EW_BINARY", "IMPLICIT_ONES"]

EW_UNARY = {"neg", "exp", "log", "tanh", "sigmoid", "relu", "leaky_relu", "recip"}
EW_BINARY = {"add", "sub", "mul", "div"}

#: The implicit all-ones edge weight of an unweighted SpMM.  A *declared*
#: pseudo input shared by lowering, autodiff, DCE, codegen, and both
#: engines — the verifier only permits it in the weight slot of the SpMM
#: family (see ``OP_SCHEMAS`` in :mod:`repro.compiler.verify`).
IMPLICIT_ONES = "__ones__"


@dataclass(frozen=True)
class TOp:
    """One tensor-IR instruction: ``out = kind(*ins, **attrs)``."""
    kind: str
    out: str
    ins: tuple[str, ...]
    attrs: dict = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable single-line form."""
        attrs = "".join(f", {k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"{self.out} = {self.kind}({', '.join(self.ins)}{attrs})"


@dataclass
class TProgram:
    """A linear tensor program.

    ``inputs`` maps buffer name → ("node"|"edge", feature_name): how the
    executor binds user arrays.  ``consts`` maps buffer name → float.
    ``spaces`` records each buffer's space for validation and codegen.
    """

    name: str
    ops: list[TOp] = field(default_factory=list)
    inputs: dict[str, tuple[str, str]] = field(default_factory=dict)
    consts: dict[str, float] = field(default_factory=dict)
    spaces: dict[str, str] = field(default_factory=dict)
    outputs: list[str] = field(default_factory=list)

    def defined_by(self) -> dict[str, TOp]:
        """Map from buffer name to the op that defines it."""
        return {op.out: op for op in self.ops}

    def all_buffers(self) -> set[str]:
        """Every buffer name the program mentions."""
        names = set(self.inputs) | set(self.consts) | {op.out for op in self.ops}
        return names

    def validate(self) -> None:
        """Check single-assignment and that every read is defined."""
        available = set(self.inputs) | set(self.consts)
        for op in self.ops:
            for name in op.ins:
                if name == IMPLICIT_ONES:
                    continue
                if name not in available:
                    raise ValueError(f"{self.name}: op {op.render()} reads undefined buffer {name!r}")
            if op.out in available:
                raise ValueError(f"{self.name}: buffer {op.out!r} redefined")
            available.add(op.out)
        for out in self.outputs:
            if out not in available:
                raise ValueError(f"{self.name}: output {out!r} never defined")

    def render(self) -> str:
        """Readable multi-line dump (inputs, consts, ops, outputs)."""
        lines = [f"program {self.name}:"]
        for buf, (kind, feat) in sorted(self.inputs.items()):
            lines.append(f"  input {buf} : {kind}[{feat}]")
        for buf, val in sorted(self.consts.items()):
            lines.append(f"  const {buf} = {val}")
        for op in self.ops:
            lines.append(f"  {op.render()}")
        lines.append(f"  return {', '.join(self.outputs)}")
        return "\n".join(lines)
