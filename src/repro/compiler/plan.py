"""Compile time, separated: the :class:`ProgramPlan` and the :class:`PlanCache`.

STGraph's pitch is compile-once/run-every-timestamp (paper §IV, Figure 1):
the vertex program is traced, differentiated, fused, and lowered to kernels
*once*, then launched across the whole temporal sequence.  This module is
the compile-time half of that split:

* :class:`ProgramPlan` — an immutable record of everything compilation
  produced for one vertex program: the traced vertex IR, the forward and
  backward tensor programs, the compiled kernels (fused or per-op), and the
  saved-state manifest the executor pushes onto the State Stack per
  timestamp.  A plan owns no execution policy; engines
  (:mod:`repro.core.engine`) run plans.
* :class:`PlanCache` — a process-wide memo keyed by a content hash of
  (program signature, declared feature widths, grad features, fusion mode,
  state-stack mode, optimization mode, dtype, graph mutability class) with
  hit/miss counters.  Every layer instance requests its plan here, so two
  instances of the same layer — or two different models sharing a vertex
  program, like the GCN gates inside TGCN/GConvGRU — compile exactly once
  per process.

All pipeline work (lower → autodiff → passes → codegen → kernel compile)
runs under the device profiler's ``"compile"`` phase, so compile cost is
measurable and visibly amortized in Figure-9-style breakdowns.

Every build also runs the compiler verifier (:mod:`repro.compiler.verify`)
before codegen: stage-algebra, SSA, gradient-completeness, ``F_b ⊆ F_f``
State-Stack safety, and write-hazard checks.  Errors raise
:class:`~repro.compiler.diagnostics.VerifyError`; warnings ride on the plan
(``plan.lint``), surface as ``verify`` instant events on an active tracer,
and are totalled in run manifests.  ``REPRO_VERIFY=0`` or
:func:`~repro.compiler.verify.set_verification` is the escape hatch.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.analysis.sanitizer import new_rlock
from repro.compiler.autodiff import build_backward
from repro.compiler.codegen import (
    compile_program,
    generate_backward_source,
    generate_forward_source,
    generate_op_kernels,
)
from repro.compiler.diagnostics import LintReport
from repro.compiler.ir import VNode
from repro.compiler.lower import CompileError, lower_trace
from repro.compiler.passes import SavedAnalysis, cse, dce, saved_analysis
from repro.compiler.symbols import TraceResult, Vertex, trace
from repro.compiler.tir import TOp, TProgram
from repro.compiler.verify import run_verifier, verification_enabled
from repro.device import current_device
from repro.device.kernel import CompiledKernel

__all__ = [
    "ProgramPlan",
    "PlanCache",
    "plan_cache",
    "plan_key",
    "register_plan_build_hook",
]


@dataclass(frozen=True)
class ProgramPlan:
    """Everything compile time produced for one vertex program.

    Immutable by construction: run time (``repro.core.engine``) only reads
    from a plan, so one plan can safely serve any number of layer instances,
    models, and executors concurrently.
    """

    plan_id: str
    name: str
    fused: bool
    state_stack_opt: bool
    optimize: bool
    dtype: str
    graph_class: str
    traced: TraceResult
    fwd_prog: TProgram
    bwd_prog: TProgram
    widths: Mapping[str, str]
    grad_map: Mapping[str, str]
    saved_spec: tuple[str, ...]
    analysis: SavedAnalysis
    #: forward input buffers declared differentiable (grad-completeness set)
    wrt: tuple[str, ...] = ()
    fwd_kernel: CompiledKernel | None = None
    bwd_kernel: CompiledKernel | None = None
    fwd_op_kernels: tuple[tuple[TOp, CompiledKernel], ...] | None = None
    bwd_op_kernels: tuple[tuple[TOp, CompiledKernel], ...] | None = None
    #: verifier findings from the build (None when verification was disabled)
    lint: LintReport | None = None

    # ------------------------------------------------------------------
    @property
    def forward_source(self) -> str:
        """The generated forward kernel's source text."""
        if self.fused:
            return self.fwd_kernel.source
        return "\n".join(k.source for _, k in self.fwd_op_kernels)

    @property
    def backward_source(self) -> str:
        """The generated backward kernel's source text."""
        if self.fused:
            return self.bwd_kernel.source
        return "\n".join(k.source for _, k in self.bwd_op_kernels)

    def required_features(self) -> tuple[set[str], set[str]]:
        """(node feature names, edge feature names) the program reads."""
        node, edge = set(), set()
        for kind, feat in self.fwd_prog.inputs.values():
            (node if kind == "node" else edge).add(feat)
        return node, edge

    def describe(self) -> str:
        """Human-readable compilation report (IR + programs + saved set)."""
        sections = [
            f"== plan {self.plan_id} ==",
            f"== vertex IR ==\n{self.traced.root.pretty()}",
            f"== forward ==\n{self.fwd_prog.render()}",
            f"== backward ==\n{self.bwd_prog.render()}",
            f"== state stack ==\n{self.analysis.summary()}",
        ]
        if self.lint is not None:
            sections.append(f"== verifier ==\n{self.lint.render()}")
        return "\n\n".join(sections)


def plan_key(
    signature: str,
    feature_widths: Mapping[str, str] | None,
    grad_features: Iterable[str] | None,
    fused: bool,
    state_stack_opt: bool,
    optimize: bool,
    dtype: str = "float32",
    graph_class: str = "any",
) -> str:
    """Content hash identifying one compilation — the :class:`PlanCache` key.

    Stable across re-traces of structurally identical vertex functions
    (``signature`` is the vertex IR's structural identity, not the Python
    function object) and across process restarts.  Any component that changes
    generated code or saved-state shape — fusion mode, state-stack mode,
    optimization mode, declared widths, grad features — changes the key, as
    do the declared specialization attributes (``dtype``, ``graph_class``).
    The display *name* deliberately does not participate: generated kernel
    entry points derive from the plan id, so structurally identical programs
    requested under different names (e.g. SAGE's neighbor mean and DCRNN's
    in-walk) share one plan.
    """
    grads = "all" if grad_features is None else tuple(sorted(grad_features))
    payload = repr(
        (
            signature,
            tuple(sorted((feature_widths or {}).items())),
            grads,
            bool(fused),
            bool(state_stack_opt),
            bool(optimize),
            str(dtype),
            str(graph_class),
        )
    )
    return "plan_" + hashlib.sha256(payload.encode()).hexdigest()[:16]


#: verification results by plan content hash; survives plan-cache clears
#: (soundness: the verifier's inputs are deterministic functions of the key)
_VERIFY_MEMO: dict[str, LintReport] = {}


def _build_plan(
    traced: TraceResult,
    plan_id: str,
    feature_widths: Mapping[str, str] | None,
    grad_features: set[str] | None,
    name: str,
    fused: bool,
    state_stack_opt: bool,
    optimize: bool,
    dtype: str,
    graph_class: str,
) -> ProgramPlan:
    """The full pipeline: lower → autodiff → passes → codegen → compile."""
    fwd_prog, widths = lower_trace(traced, dict(feature_widths or {}), name=name)
    if optimize:
        cse(fwd_prog)
        dce(fwd_prog)

    if grad_features is None:
        wrt = set(fwd_prog.inputs)
    else:
        wrt = {
            buf
            for buf, (_kind, feat) in fwd_prog.inputs.items()
            if feat in grad_features
        }
        missing = grad_features - {feat for _, feat in fwd_prog.inputs.values()}
        if missing:
            raise CompileError(f"grad_features not read by the program: {sorted(missing)}")
    bwd_result = build_backward(fwd_prog, widths, wrt=wrt)
    bwd_prog = bwd_result.prog
    if optimize:
        cse(bwd_prog)
        dce(bwd_prog)
        # CSE/DCE may have dropped saved references; recompute.
        bwd_result.saved = [n for n, (k, _) in bwd_prog.inputs.items() if k == "saved"]
    grad_map = {
        inp: g for inp, g in bwd_result.grad_map.items() if g in set(bwd_prog.outputs)
    }
    analysis = saved_analysis(fwd_prog, bwd_prog)

    if state_stack_opt:
        saved_spec = tuple(bwd_result.saved)
    else:
        # Ablation: retain every forward buffer, like a backend without
        # the IR comparison (the bwd kernel reads a superset-compatible
        # dict, so correctness is unchanged).
        saved_spec = tuple(analysis.all_forward_buffers)

    # Verification runs before codegen: a plan that fails the stage-algebra,
    # SSA, grad-completeness, F_b ⊆ F_f, or write-hazard checks never
    # reaches the kernel compiler.  Warnings ride on the plan and surface
    # through any active tracer as `verify` instant events.  Like the kernel
    # launcher's source dedup, the result is memoized by content hash across
    # plan-cache clears: every verifier input is a deterministic function of
    # the plan key, so a re-verification can never disagree with the first.
    lint: LintReport | None = None
    if verification_enabled():
        lint = _VERIFY_MEMO.get(plan_id)
        if lint is None:
            lint = run_verifier(
                traced.root, fwd_prog, bwd_prog, grad_map, wrt, saved_spec,
                subject=name, analysis=analysis,
            )
            _VERIFY_MEMO[plan_id] = lint
        lint.raise_if_errors()
        if lint.warnings:
            _emit_lint_warnings(lint)

    # Entry points derive from the content hash, not the display name, so
    # the generated source of a cached plan is deterministic no matter which
    # layer requested the compilation first.
    fwd_kernel = bwd_kernel = None
    fwd_op_kernels = bwd_op_kernels = None
    if fused:
        fwd_src = generate_forward_source(fwd_prog, list(saved_spec), f"{plan_id}_fwd")
        fwd_kernel = compile_program(fwd_src, f"{plan_id}_fwd")
        bwd_src = generate_backward_source(bwd_prog, grad_map, f"{plan_id}_bwd")
        bwd_kernel = compile_program(bwd_src, f"{plan_id}_bwd")
    else:
        fwd_op_kernels = tuple(generate_op_kernels(fwd_prog, f"{plan_id}_fwd"))
        bwd_op_kernels = tuple(generate_op_kernels(bwd_prog, f"{plan_id}_bwd"))

    return ProgramPlan(
        plan_id=plan_id,
        name=name,
        fused=fused,
        state_stack_opt=state_stack_opt,
        optimize=optimize,
        dtype=dtype,
        graph_class=graph_class,
        traced=traced,
        fwd_prog=fwd_prog,
        bwd_prog=bwd_prog,
        widths=widths,
        grad_map=grad_map,
        saved_spec=saved_spec,
        analysis=analysis,
        wrt=tuple(sorted(wrt)),
        fwd_kernel=fwd_kernel,
        bwd_kernel=bwd_kernel,
        fwd_op_kernels=fwd_op_kernels,
        bwd_op_kernels=bwd_op_kernels,
        lint=lint,
    )


def _emit_lint_warnings(lint: LintReport) -> None:
    """Surface verifier warnings on the active tracer as instant events."""
    from repro.obs.tracer import current_tracer

    tracer = current_tracer()
    for diag in lint.warnings:
        tracer.instant(
            f"lint:{diag.code}",
            cat="verify",
            program=diag.program or lint.subject,
            message=diag.message,
            where=diag.where,
        )


#: observers invoked (inside the build's ``"compile"`` profiler phase) for
#: every freshly built plan — the compiled engine registers its ahead-of-use
#: driver compilation here, so "compile at plan-build time" holds even for
#: plans built before the engine is ever selected (hooks replay over cached
#: plans on registration).
_PLAN_BUILD_HOOKS: list[Callable[[ProgramPlan], None]] = []


def register_plan_build_hook(hook: Callable[[ProgramPlan], None], replay: bool = True) -> None:
    """Subscribe ``hook`` to every plan build (idempotent per callable).

    With ``replay`` (default) the hook also runs over every already-cached
    plan, so late registration — e.g. the compiled engine instantiated after
    the model compiled — still precompiles the full working set.  Hook
    failures never poison plan builds for unrelated engines: they are
    swallowed here (counted as ``plan_hook_errors`` on the device profiler)
    and resurface loudly when the subscribing engine actually runs the plan.
    """
    if hook in _PLAN_BUILD_HOOKS:
        return
    _PLAN_BUILD_HOOKS.append(hook)
    if replay:
        for plan in plan_cache().plans():
            _run_plan_hooks(plan, hooks=[hook])


def _run_plan_hooks(plan: ProgramPlan, hooks: list[Callable[[ProgramPlan], None]] | None = None) -> None:
    for hook in list(_PLAN_BUILD_HOOKS) if hooks is None else hooks:
        try:
            hook(plan)
        except Exception:
            current_device().profiler.count("plan_hook_errors")


class PlanCache:
    """Process-wide memo of :class:`ProgramPlan` objects with hit/miss counters.

    A *hit* returns the cached plan after nothing more than a re-trace (the
    trace is how the structural key is computed; it is symbolic and cheap).
    A *miss* runs the full pipeline under the device profiler's ``"compile"``
    phase.  Thread-safe; the lock is held across builds so concurrent
    requests for the same key compile once.
    """

    def __init__(self) -> None:
        self._plans: dict[str, ProgramPlan] = {}
        self._lock = new_rlock("PlanCache._lock")
        self.hits = 0
        self.misses = 0

    def get_or_build(
        self,
        fn: Callable[[Vertex], VNode],
        feature_widths: Mapping[str, str] | None = None,
        grad_features: set[str] | None = None,
        name: str = "vertex_program",
        fused: bool = True,
        state_stack_opt: bool = True,
        optimize: bool = True,
        dtype: str = "float32",
        graph_class: str = "any",
    ) -> ProgramPlan:
        """The cached plan for this compilation, building it on first request."""
        traced = trace(fn)
        key = plan_key(
            traced.signature(),
            feature_widths,
            grad_features,
            fused,
            state_stack_opt,
            optimize,
            dtype,
            graph_class,
        )
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.hits += 1
                return plan
            self.misses += 1
            with current_device().profiler.phase("compile"):
                plan = _build_plan(
                    traced,
                    key,
                    feature_widths,
                    grad_features,
                    name,
                    fused,
                    state_stack_opt,
                    optimize,
                    dtype,
                    graph_class,
                )
                # Build-time observers (e.g. the compiled engine's native
                # driver compilation) run inside the compile phase so their
                # cost lands in the fig9 `compile_%` column with the rest.
                _run_plan_hooks(plan)
            self._plans[key] = plan
            return plan

    def get(self, plan_id: str) -> ProgramPlan | None:
        """Cached plan by id, or None (does not count as a hit or miss)."""
        with self._lock:
            return self._plans.get(plan_id)

    def plans(self) -> list[ProgramPlan]:
        """All cached plans (snapshot), e.g. to inspect generated kernel source."""
        with self._lock:
            return list(self._plans.values())

    def stats(self) -> dict[str, int]:
        """Hit/miss counters and current size."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._plans)}

    def clear(self) -> None:
        """Drop every cached plan and reset counters (tests/benchmarks)."""
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)


_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide plan cache every layer compiles through."""
    return _PLAN_CACHE
