"""IR visualization: Graphviz dot output for vertex and tensor IR.

``python -m repro.cli inspect --layer gcn`` prints textual dumps; these
helpers produce ``dot`` source for rendering the same structures
(``dot -Tpng``), color-coded by stage/space. No Graphviz dependency — the
output is just a string.
"""

from __future__ import annotations

from repro.compiler.ir import Stage, VNode
from repro.compiler.tir import IMPLICIT_ONES, TProgram

__all__ = ["vertex_ir_to_dot", "tensor_ir_to_dot"]

_STAGE_COLORS = {
    Stage.SRC: "#93c5fd",  # blue: per-source values
    Stage.DST: "#fcd34d",  # amber: per-destination values
    Stage.EDGE: "#f9a8d4",  # pink: per-edge scalars
    Stage.CONST: "#e5e7eb",  # gray
}

_SPACE_COLORS = {"node": "#93c5fd", "edge": "#f9a8d4", "scalar": "#e5e7eb"}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def vertex_ir_to_dot(root: VNode, name: str = "vertex_ir") -> str:
    """Graphviz source for a traced vertex-IR DAG."""
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=BT;", "  node [style=filled, shape=box];"]
    ids: dict[int, int] = {}
    for i, node in enumerate(root.topo()):
        ids[id(node)] = i
        label = node.op
        if node.name:
            label += f" {node.name}"
        if node.attrs:
            label += " " + ",".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
        color = _STAGE_COLORS[node.stage]
        lines.append(f'  n{i} [label="{_escape(label)}\\n[{node.stage.value}]", fillcolor="{color}"];')
        for arg in node.args:
            lines.append(f"  n{ids[id(arg)]} -> n{i};")
    lines.append("}")
    return "\n".join(lines)


def tensor_ir_to_dot(prog: TProgram) -> str:
    """Graphviz source for a lowered tensor program."""
    lines = [f'digraph "{_escape(prog.name)}" {{', "  rankdir=BT;", "  node [style=filled, shape=box];"]
    seen: set[str] = set()

    def declare(buf: str) -> None:
        if buf in seen or buf == IMPLICIT_ONES:
            return
        seen.add(buf)
        space = prog.spaces.get(buf, "scalar")
        shape = "ellipse" if buf in prog.inputs or buf in prog.consts else "box"
        extra = ""
        if buf in prog.inputs:
            kind, feat = prog.inputs[buf]
            extra = f"\\n{kind}[{feat}]"
        elif buf in prog.consts:
            extra = f"\\n= {prog.consts[buf]}"
        lines.append(
            f'  "{_escape(buf)}" [label="{_escape(buf)}{extra}", shape={shape}, '
            f'fillcolor="{_SPACE_COLORS.get(space, "#e5e7eb")}"];'
        )

    for buf in list(prog.inputs) + list(prog.consts):
        declare(buf)
    for i, op in enumerate(prog.ops):
        declare(op.out)
        attrs = ",".join(f"{k}={v}" for k, v in sorted(op.attrs.items()))
        op_label = op.kind + (f"\\n{attrs}" if attrs else "")
        lines.append(f'  op{i} [label="{_escape(op_label)}", shape=oval, fillcolor="#ffffff"];')
        for src in op.ins:
            if src != IMPLICIT_ONES:
                declare(src)
                lines.append(f'  "{_escape(src)}" -> op{i};')
        lines.append(f'  op{i} -> "{_escape(op.out)}";')
    for out in prog.outputs:
        lines.append(f'  "{_escape(out)}" [penwidth=3];')
    lines.append("}")
    return "\n".join(lines)
