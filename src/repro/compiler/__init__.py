"""The vertex-centric compiler (Seastar core, paper §IV/§V).

A user writes the per-vertex forward logic of a GNN layer::

    def gcn(v):
        return v.agg_sum(lambda nb: nb.h * nb.norm) * v.norm
    # or, generator style:
    def gcn(v):
        return sum(nb.h * nb.norm for nb in v.innbs) * v.norm

The compiler pipeline then mirrors Seastar's:

1. **trace** — execute the function with symbolic proxies, producing a
   vertex-level IR DAG whose nodes carry a *stage* (SRC / DST / EDGE).
2. **lower** — normalize aggregation bodies to sum-of-products, split each
   term into a source-stage payload (kept in node space, never materialized
   per edge), edge-stage scalar weights, and hoisted destination factors;
   lower everything to a linear tensor IR whose aggregation op is a CSR
   SpMM — the simulated-device analogue of Seastar's fused
   feature-adaptive CUDA kernel.
3. **autodiff** — build the backward tensor IR by VJP rules; the SpMM's
   gradient runs over the *backward* CSR, which is exactly why the graph
   abstraction carries both orientations with shared edge labels.
4. **passes** — dead-code elimination and the *saved-tensor analysis*: the
   set of forward values the backward program actually reads.  This is the
   State Stack memory optimization ("STGraph compares the backward and
   forward intermediate representations to determine which features need to
   be stored in the state-stack").
5. **codegen** — emit inspectable Python kernel source (fused single-kernel
   or one-launch-per-op for the fusion ablation) and compile it through the
   device's kernel launcher.
6. **plan** — package everything into an immutable
   :class:`~repro.compiler.plan.ProgramPlan`, memoized in the process-wide
   :func:`~repro.compiler.plan.plan_cache` so identical programs compile
   once; execution engines (:mod:`repro.core.engine`) run plans.
"""

from repro.compiler.diagnostics import CODES, Diagnostic, LintReport, VerifyError, code_table
from repro.compiler.ir import Stage, VNode
from repro.compiler.symbols import Vertex, trace
from repro.compiler.plan import PlanCache, ProgramPlan, plan_cache, plan_key
from repro.compiler.program import VertexProgram, compile_vertex_program
from repro.compiler.interp import interpret_program, trace_execution
from repro.compiler.tir import IMPLICIT_ONES
from repro.compiler.verify import (
    run_verifier,
    set_verification,
    verification_disabled,
    verification_enabled,
    verify_plan,
)
from repro.compiler.viz import tensor_ir_to_dot, vertex_ir_to_dot

__all__ = [
    "Stage",
    "VNode",
    "Vertex",
    "trace",
    "ProgramPlan",
    "PlanCache",
    "plan_cache",
    "plan_key",
    "VertexProgram",
    "compile_vertex_program",
    "interpret_program",
    "trace_execution",
    "vertex_ir_to_dot",
    "tensor_ir_to_dot",
    "IMPLICIT_ONES",
    "CODES",
    "code_table",
    "Diagnostic",
    "LintReport",
    "VerifyError",
    "run_verifier",
    "verify_plan",
    "set_verification",
    "verification_enabled",
    "verification_disabled",
]
