"""The compiler verifier: static validation of everything a plan contains.

The compiler *assumes* a set of invariants it never previously *checked*:
the vertex-IR stage algebra (SRC/DST/EDGE/CONST), the SSA discipline of
lowered tensor programs, and the paper's central memory claim that the
backward program's saved set satisfies ``F_b ⊆ F_f`` (the State Stack
safety condition).  Violations — a mis-staged node, a dangling saved
buffer, a non-reduction scatter — historically fail *silently*, as wrong
gradients rather than errors.  This module makes them loud:

* :func:`verify_vnode_dag` — acyclicity, stage-algebra well-formedness
  (stages are recomputed bottom-up and compared against the stored ones),
  no destination-stage aggregation bodies, no orphan/duplicate feature
  leaves, nested-aggregation legality.
* :func:`verify_tprogram` — single assignment per buffer, def-before-use,
  no dangling inputs/outputs/consts, per-kind operand/attr schemas, space
  table completeness.
* :func:`verify_gradients` — every differentiable forward input has a
  gradient output in the backward program (or was explicitly marked
  non-diff via ``grad_features``), every backward ``saved`` input is
  actually produced by the forward program (``F_b ⊆ F_f``; the result is
  wired through :class:`~repro.compiler.passes.SavedAnalysis`), and the
  grad seed references the forward output.
* :func:`verify_write_hazards` — every lowered op is classified as
  gather / elementwise / reduce-scatter / structural; an edge-space value
  written into a node-space buffer by anything but a reduction is exactly
  the write that needs an atomic scatter on real hardware (Algorithm 3),
  so it is rejected.

The full suite runs automatically when a :class:`ProgramPlan` is built
(:func:`verification_enabled` is the escape hatch; ``REPRO_VERIFY=0``
disables it process-wide) and on demand via ``repro lint``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping

from repro.compiler.diagnostics import LintReport
from repro.compiler.ir import Stage, VNode, combine_stages
from repro.compiler.passes import SavedAnalysis, saved_analysis
from repro.compiler.tir import EW_BINARY, EW_UNARY, IMPLICIT_ONES, TProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.compiler.plan import ProgramPlan

__all__ = [
    "OpSchema",
    "OP_SCHEMAS",
    "verify_vnode_dag",
    "verify_tprogram",
    "verify_gradients",
    "verify_write_hazards",
    "run_verifier",
    "verify_plan",
    "verification_enabled",
    "set_verification",
    "verification_disabled",
]

_AGG_OPS = {"sum", "mean", "max"}
_DIRECTIONS = {"in", "out"}


# ---------------------------------------------------------------------------
# Escape hatch
# ---------------------------------------------------------------------------
_enabled = os.environ.get("REPRO_VERIFY", "1").strip().lower() not in ("0", "false", "off")


def verification_enabled() -> bool:
    """Whether plan builds run the verifier (default on; ``REPRO_VERIFY=0``)."""
    return _enabled


def set_verification(enabled: bool) -> bool:
    """Toggle plan-build verification; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    return previous


@contextmanager
def verification_disabled() -> Iterator[None]:
    """Context manager form of the escape hatch (ablation/benchmark use)."""
    previous = set_verification(False)
    try:
        yield
    finally:
        set_verification(previous)


# ---------------------------------------------------------------------------
# Tensor-IR op schemas (operand count, attrs, hazard class, output space)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OpSchema:
    """Static shape of one tensor-IR op kind.

    ``klass`` is the write-hazard classification used by
    :func:`verify_write_hazards`:

    * ``"reduce"``       — aggregates edge/neighbor values into node space
      (the only legal edge→node writes; atomic scatters on real hardware);
    * ``"gather"``       — replicates node values per edge (node→edge);
    * ``"edge_local"``   — per-edge-group math, edge in / edge out;
    * ``"elementwise"``  — space-preserving math;
    * ``"structural"``   — reads only graph structure (degrees, ones).
    """

    arity: tuple[int, int]
    klass: str
    out_space: str | None = None  # fixed output space; None = input-derived
    required: frozenset = frozenset()
    optional: frozenset = frozenset()
    #: operand positions where the implicit all-ones weight is legal
    ones_positions: frozenset = frozenset()
    #: required ∪ optional, precomputed for the verifier's hot path
    allowed: frozenset = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "allowed", self.required | self.optional)


_DIR = frozenset({"direction"})

OP_SCHEMAS: dict[str, OpSchema] = {
    "ew": OpSchema((1, 2), "elementwise", required=frozenset({"op"}), optional=frozenset({"slope"})),
    "spmm": OpSchema((2, 2), "reduce", "node", optional=_DIR, ones_positions=frozenset({0})),
    "spmm_T": OpSchema((2, 2), "reduce", "node", optional=_DIR, ones_positions=frozenset({0})),
    "segment_sum": OpSchema((1, 1), "reduce", "node"),
    "segment_sum_dst": OpSchema((1, 1), "reduce", "node"),
    "segment_max": OpSchema((1, 1), "reduce", "node"),
    "scatter_src": OpSchema((1, 1), "reduce", "node"),
    "gather_src": OpSchema((1, 1), "gather", "edge"),
    "gather_dst": OpSchema((1, 1), "gather", "edge"),
    "edge_softmax": OpSchema((1, 1), "edge_local", "edge"),
    "edge_softmax_bwd": OpSchema((2, 2), "edge_local", "edge"),
    "edge_dot": OpSchema((2, 2), "gather", "edge", optional=_DIR),
    "agg_max": OpSchema((1, 1), "reduce", "node"),
    "agg_max_bwd": OpSchema((3, 3), "reduce", "node"),
    "in_deg": OpSchema((0, 0), "structural", "node"),
    "in_deg_clamped": OpSchema((0, 0), "structural", "node"),
    "out_deg": OpSchema((0, 0), "structural", "node"),
    "out_deg_clamped": OpSchema((0, 0), "structural", "node"),
    "ones_node": OpSchema((0, 0), "structural", "node"),
    "colsum": OpSchema((1, 1), "elementwise"),
    "relu_mask": OpSchema((1, 1), "elementwise"),
    "leaky_mask": OpSchema((1, 1), "elementwise", optional=frozenset({"slope"})),
}


# ---------------------------------------------------------------------------
# 1. VNode DAG verifier
# ---------------------------------------------------------------------------
def _node_where(node: VNode, ids: Mapping[int, int]) -> str:
    idx = ids.get(id(node))
    prefix = f"%{idx} " if idx is not None else ""
    name = f" {node.name!r}" if node.name else ""
    return f"{prefix}{node.op}.{node.stage.value}{name}"


def verify_vnode_dag(root: VNode, report: LintReport, program: str = "") -> None:
    """Check a vertex-IR DAG: acyclicity, stage algebra, leaves, nesting."""
    # One DFS does both jobs: a back-edge to a GRAY node is a cycle, and
    # the post-order is the topological order the stage recomputation needs.
    WHITE, GRAY = 0, 1
    color: dict[int, int] = {}
    order: list[VNode] = []
    stack: list[tuple[VNode, bool]] = [(root, False)]
    while stack:
        node, done = stack.pop()
        if done:
            color[id(node)] = 2  # BLACK
            order.append(node)
            continue
        if color.get(id(node), WHITE):
            continue
        color[id(node)] = GRAY
        stack.append((node, True))
        for arg in node.args:
            state = color.get(id(arg), WHITE)
            if state == GRAY:
                report.add(
                    "STG001",
                    f"vertex IR reachable from op {root.op!r} contains a cycle through {arg.op!r}",
                    where=f"{arg.op}.{arg.stage.value}",
                    program=program,
                )
                return  # stages cannot be recomputed on a cyclic graph
            if state == WHITE:
                stack.append((arg, False))

    # Index map for provenance strings: only materialized on first finding
    # (the clean path never pays for it).
    ids: dict[int, int] = {}

    def where(node: VNode) -> str:
        if not ids:
            ids.update({id(n): i for i, n in enumerate(order)})
        return _node_where(node, ids)

    recomputed: dict[int, Stage] = {}
    seen_feats: dict[tuple[str, Stage], VNode] = {}
    aggs: list[VNode] = []

    # -- leaves (STG004) + stage recomputation bottom-up (STG002/STG003) --
    for node in order:
        expected: Stage | None = None
        op = node.op
        if op == "feat":
            if not node.name:
                report.add(
                    "STG004",
                    "feature leaf has no name (orphan leaf cannot be bound to user data)",
                    where=where(node),
                    program=program,
                )
            else:
                key = (node.name, node.stage)
                first = seen_feats.get(key)
                if first is not None and first is not node:
                    report.add(
                        "STG004",
                        f"duplicate feature leaf {node.name!r} at stage {node.stage.value!r} "
                        "(distinct leaf objects break trace memoization and the plan-cache signature)",
                        where=where(node),
                        program=program,
                    )
                else:
                    seen_feats[key] = node
            if node.args:
                report.add("STG002", "feature leaf has arguments", where=where(node), program=program)
            if node.stage == Stage.CONST:
                report.add("STG002", "feature leaf carries CONST stage", where=where(node), program=program)
            expected = node.stage if node.stage != Stage.CONST else None
        elif op in EW_BINARY:
            if len(node.args) != 2:
                report.add(
                    "STG002",
                    f"binary op {op!r} has {len(node.args)} arguments",
                    where=where(node),
                    program=program,
                )
            else:
                a, b = node.args
                expected = combine_stages(
                    recomputed.get(id(a), a.stage), recomputed.get(id(b), b.stage)
                )
        elif op in EW_UNARY:
            if len(node.args) != 1:
                report.add(
                    "STG002",
                    f"unary op {op!r} has {len(node.args)} arguments",
                    where=where(node),
                    program=program,
                )
            else:
                a = node.args[0]
                expected = recomputed.get(id(a), a.stage)
        elif op == "const":
            if node.args:
                report.add("STG002", "const node has arguments", where=where(node), program=program)
            expected = Stage.CONST
        elif op == "agg":
            aggs.append(node)
            expected = Stage.DST
            agg_op = node.attrs.get("agg_op")
            direction = node.attrs.get("direction", "in")
            if agg_op not in _AGG_OPS:
                report.add(
                    "STG002",
                    f"aggregation has unknown agg_op {agg_op!r}",
                    where=where(node),
                    program=program,
                )
            if direction not in _DIRECTIONS:
                report.add(
                    "STG002",
                    f"aggregation has unknown direction {direction!r}",
                    where=where(node),
                    program=program,
                )
            if len(node.args) != 1:
                report.add(
                    "STG002",
                    f"aggregation has {len(node.args)} bodies",
                    where=where(node),
                    program=program,
                )
            else:
                a = node.args[0]
                if recomputed.get(id(a), a.stage) == Stage.DST:
                    report.add(
                        "STG003",
                        "aggregation body is a pure destination-stage expression; "
                        "it references no neighbor value, so the sum is degree-scaling in disguise",
                        where=where(node),
                        program=program,
                    )
        elif op == "edge_softmax":
            expected = Stage.EDGE
            if len(node.args) != 1:
                report.add(
                    "STG002",
                    f"edge_softmax has {len(node.args)} bodies",
                    where=where(node),
                    program=program,
                )
            else:
                a = node.args[0]
                if recomputed.get(id(a), a.stage) == Stage.CONST:
                    report.add(
                        "STG002",
                        "edge_softmax of a constant score",
                        where=where(node),
                        program=program,
                    )
        else:
            report.add(
                "STG002",
                f"unknown vertex-IR op {op!r}",
                where=where(node),
                program=program,
            )

        if expected is not None:
            recomputed[id(node)] = expected
            if node.stage != expected:
                report.add(
                    "STG002",
                    f"stored stage {node.stage.value!r} disagrees with recomputed stage {expected.value!r}",
                    where=where(node),
                    program=program,
                )

    # -- nested-aggregation legality (STG005) ---------------------------
    for node in aggs:
        if not node.args:
            continue
        # Walk the body; an inner `agg` reached through an EDGE-stage
        # intermediate has been pulled into per-edge space — a gather per
        # edge, legal only at scalar width (vector widths are the E×F
        # blow-up lowering hard-rejects).  edge_softmax bodies are the
        # intended GAT pattern and stay exempt.
        stack: list[tuple[VNode, bool]] = [(node.args[0], False)]
        visited: dict[bool, set[int]] = {False: set(), True: set()}
        while stack:
            cur, via_edge = stack.pop()
            if id(cur) in visited[via_edge]:
                continue
            visited[via_edge].add(id(cur))
            if cur.op == "agg" and cur is not node and via_edge:
                report.add(
                    "STG005",
                    "nested aggregation result pulled into edge space; this gathers a "
                    "destination value per edge and is legal only at scalar width",
                    where=where(cur),
                    program=program,
                )
                continue
            flag = via_edge or recomputed.get(id(cur), cur.stage) == Stage.EDGE
            for arg in cur.args:
                stack.append((arg, flag))


# ---------------------------------------------------------------------------
# 2. TProgram verifier
# ---------------------------------------------------------------------------
def verify_tprogram(prog: TProgram, report: LintReport) -> None:
    """Check a tensor program: SSA, def-before-use, dangling names, schemas."""
    program = prog.name
    spaces = prog.spaces

    # -- space-table completeness for inputs/consts (STG014) -------------
    # (op results are checked inside the main walk below)
    for buf in prog.inputs:
        if buf not in spaces:
            report.add(
                "STG014",
                f"buffer {buf!r} is missing from the space table",
                where=f"buffer {buf!r}",
                program=program,
            )
    for buf in prog.consts:
        if buf not in spaces:
            report.add(
                "STG014",
                f"buffer {buf!r} is missing from the space table",
                where=f"buffer {buf!r}",
                program=program,
            )

    # -- SSA / def-before-use / schema walk ------------------------------
    available: set[str] = set(prog.inputs) | set(prog.consts)
    used: set[str] = set()
    for op in prog.ops:
        if op.out not in spaces:
            report.add(
                "STG014",
                f"buffer {op.out!r} is missing from the space table",
                where=f"buffer {op.out!r}",
                program=program,
            )
        schema = OP_SCHEMAS.get(op.kind)
        attrs = op.attrs
        if schema is None:
            report.add(
                "STG013", f"unknown op kind {op.kind!r}", where=f"op {op.render()}", program=program
            )
        else:
            lo, hi = schema.arity
            if not (lo <= len(op.ins) <= hi):
                report.add(
                    "STG013",
                    f"op {op.kind!r} takes {lo}..{hi} operands, got {len(op.ins)}",
                    where=f"op {op.render()}",
                    program=program,
                )
            if schema.required and not (schema.required <= attrs.keys()):
                report.add(
                    "STG013",
                    f"op {op.kind!r} is missing required attrs {sorted(schema.required - attrs.keys())}",
                    where=f"op {op.render()}",
                    program=program,
                )
            if attrs:
                if not (attrs.keys() <= schema.allowed):
                    report.add(
                        "STG013",
                        f"op {op.kind!r} carries unexpected attrs "
                        f"{sorted(attrs.keys() - schema.allowed)}",
                        where=f"op {op.render()}",
                        program=program,
                    )
                if "direction" in attrs and attrs["direction"] not in _DIRECTIONS:
                    report.add(
                        "STG013",
                        f"direction must be 'in' or 'out', got {attrs['direction']!r}",
                        where=f"op {op.render()}",
                        program=program,
                    )
                if op.kind == "ew" and "op" in attrs:
                    ew = attrs["op"]
                    legal = EW_UNARY if len(op.ins) == 1 else EW_BINARY
                    if ew not in legal:
                        report.add(
                            "STG013",
                            f"elementwise op {ew!r} is not a known "
                            f"{'unary' if len(op.ins) == 1 else 'binary'} op",
                            where=f"op {op.render()}",
                            program=program,
                        )

        for pos, name in enumerate(op.ins):
            if name == IMPLICIT_ONES:
                # The implicit all-ones edge weight is a *declared* pseudo
                # input, legal only in the weight slot of the SpMM family.
                if schema is None or pos not in schema.ones_positions:
                    report.add(
                        "STG013",
                        f"implicit input {IMPLICIT_ONES!r} is only legal as the weight "
                        f"operand of spmm/spmm_T, not operand {pos} of {op.kind!r}",
                        where=f"op {op.render()}",
                        program=program,
                    )
                continue
            used.add(name)
            if name not in available:
                report.add(
                    "STG011",
                    f"op reads buffer {name!r} before any definition",
                    where=f"op {op.render()}",
                    program=program,
                )
        if op.out in available:
            what = (
                "an input" if op.out in prog.inputs
                else "a const" if op.out in prog.consts
                else "an earlier op result"
            )
            report.add(
                "STG010",
                f"buffer {op.out!r} redefined (already {what}); programs are single-assignment",
                where=f"op {op.render()}",
                program=program,
            )
        available.add(op.out)

    # -- dangling names (STG012) ----------------------------------------
    for out in prog.outputs:
        used.add(out)
        if out not in available:
            report.add(
                "STG012",
                f"declared output {out!r} is never defined",
                where=f"output {out!r}",
                program=program,
            )
    for buf in prog.inputs:
        if buf not in used:
            report.add(
                "STG012",
                f"declared input {buf!r} is never read (dead binding)",
                where=f"input {buf!r}",
                program=program,
                severity="warning",
            )
    for buf in prog.consts:
        if buf not in used:
            report.add(
                "STG012",
                f"declared const {buf!r} is never read",
                where=f"const {buf!r}",
                program=program,
                severity="warning",
            )


# ---------------------------------------------------------------------------
# 3. Gradient completeness + State-Stack safety (F_b ⊆ F_f)
# ---------------------------------------------------------------------------
def verify_gradients(
    fwd: TProgram,
    bwd: TProgram,
    grad_map: Mapping[str, str],
    wrt: Iterable[str],
    report: LintReport,
    saved_spec: Iterable[str] | None = None,
    analysis: "SavedAnalysis | None" = None,
) -> None:
    """Check grad-completeness and the backward program's forward references.

    ``wrt`` is the set of forward input buffers declared differentiable
    (from ``grad_features``; inputs outside it are *explicitly* non-diff).
    ``saved_spec`` is the plan's State-Stack manifest — what the executor
    actually pushes per timestamp; every saved read must be inside it.
    ``analysis`` may pass a precomputed :class:`SavedAnalysis` of the same
    (fwd, bwd) pair to avoid recomputing it.
    """
    bwd_outputs = set(bwd.outputs)
    for buf in sorted(set(wrt)):
        grad = grad_map.get(buf)
        if grad is None or grad not in bwd_outputs:
            report.add(
                "STG020",
                f"differentiable forward input {buf!r} has no gradient output in the "
                "backward program (mark it non-diff via grad_features, or the VJP chain was dropped)",
                where=f"input {buf!r}",
                program=bwd.name,
            )

    # F_b ⊆ F_f: wired through the saved-tensor analysis so the State-Stack
    # report and the verifier agree on what "produced by forward" means.
    if analysis is None:
        analysis = saved_analysis(fwd, bwd)
    for name in analysis.missing:
        report.add(
            "STG021",
            f"backward saved input {name!r} is not produced by the forward program "
            "(F_b ⊆ F_f violated: the State Stack could never hold it)",
            where=f"saved input {name!r}",
            program=bwd.name,
        )
    if saved_spec is not None:
        spec = set(saved_spec)
        for name in analysis.saved:
            if name in spec or name in analysis.missing:
                continue
            report.add(
                "STG021",
                f"backward saved input {name!r} is missing from the plan's saved_spec; "
                "the executor would never push it onto the State Stack",
                where=f"saved input {name!r}",
                program=bwd.name,
            )

    fwd_outputs = set(fwd.outputs)
    for name, (kind, ref) in bwd.inputs.items():
        if kind == "grad" and ref not in fwd_outputs:
            report.add(
                "STG022",
                f"grad seed {name!r} references {ref!r}, which is not a forward output",
                where=f"grad input {name!r}",
                program=bwd.name,
            )


# ---------------------------------------------------------------------------
# 4. Write-hazard analysis (the atomic-scatter condition, Algorithm 3)
# ---------------------------------------------------------------------------
def verify_write_hazards(prog: TProgram, report: LintReport) -> None:
    """Reject edge→node writes that are not reductions.

    On real hardware an edge-parallel value accumulated into a node-space
    buffer needs an atomic scatter (Algorithm 3's update kernels); the
    lowered IR therefore only permits the dedicated reduction kinds to
    cross from edge space into node space.  A non-reduction op that mixes
    spaces is a race waiting to happen, so it is rejected statically.
    """
    spaces = prog.spaces
    for op in prog.ops:
        schema = OP_SCHEMAS.get(op.kind)
        if schema is None or schema.klass == "reduce" or not op.ins:
            continue  # unknown kinds already flagged as STG013
        has_edge = has_node = False
        for name in op.ins:
            space = spaces.get(name)
            if space == "edge":
                has_edge = True
            elif space == "node":
                has_node = True
        if not has_edge:
            continue
        if spaces.get(op.out) == "node":
            report.add(
                "STG030",
                f"{schema.klass} op {op.kind!r} writes an edge-space value into node-space "
                f"buffer {op.out!r}; only reductions may cross edge→node (atomic-scatter condition)",
                where=f"op {op.render()}",
                program=prog.name,
            )
        elif has_node:
            report.add(
                "STG030",
                f"{schema.klass} op {op.kind!r} mixes edge-space and node-space operands "
                "without a reduction; per-edge feature math materializes E×F memory",
                where=f"op {op.render()}",
                program=prog.name,
            )


# ---------------------------------------------------------------------------
# The full suite
# ---------------------------------------------------------------------------
def run_verifier(
    root: VNode,
    fwd: TProgram,
    bwd: TProgram,
    grad_map: Mapping[str, str],
    wrt: Iterable[str],
    saved_spec: Iterable[str] | None,
    subject: str = "",
    analysis: "SavedAnalysis | None" = None,
) -> LintReport:
    """Run every pass over one compilation's artifacts; returns the report."""
    report = LintReport(subject=subject)
    verify_vnode_dag(root, report, program=subject)
    verify_tprogram(fwd, report)
    verify_tprogram(bwd, report)
    verify_gradients(fwd, bwd, grad_map, wrt, report, saved_spec=saved_spec, analysis=analysis)
    verify_write_hazards(fwd, report)
    verify_write_hazards(bwd, report)
    return report


def verify_plan(plan: "ProgramPlan") -> LintReport:
    """Run the full suite over a built :class:`ProgramPlan` (``repro lint``)."""
    return run_verifier(
        plan.traced.root,
        plan.fwd_prog,
        plan.bwd_prog,
        plan.grad_map,
        plan.wrt,
        plan.saved_spec,
        subject=plan.name or plan.plan_id,
        analysis=plan.analysis,
    )
