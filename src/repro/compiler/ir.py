"""Vertex-level IR: a DAG of staged expression nodes.

Each node carries a :class:`Stage`:

* ``SRC`` — a value per *source* (in-neighbor) vertex; lives in node space.
* ``DST`` — a value per *destination* (center) vertex; node space.
* ``EDGE`` — a scalar per edge (attention scores, edge weights).
* ``CONST`` — stage-free constants.

Stage algebra for binary ops: ``CONST`` is absorbed by the other operand;
``SRC ∘ DST`` (or anything involving ``EDGE``) produces ``EDGE``.  An
aggregation consumes an edge-stage (or src-stage) body and produces ``DST``.
"""

from __future__ import annotations

import enum
import itertools

__all__ = ["Stage", "VNode", "combine_stages"]

_counter = itertools.count()


class Stage(enum.Enum):
    """Where a value lives relative to the aggregation (SRC/DST/EDGE/CONST)."""
    SRC = "src"
    DST = "dst"
    EDGE = "edge"
    CONST = "const"


def combine_stages(a: Stage, b: Stage) -> Stage:
    """Stage of a binary op's result (CONST absorbs, SRC x DST -> EDGE)."""
    if a == b:
        return a
    if a == Stage.CONST:
        return b
    if b == Stage.CONST:
        return a
    return Stage.EDGE


_ELEMENTWISE_UNARY = {"neg", "exp", "log", "tanh", "sigmoid", "relu", "leaky_relu", "recip"}
_ELEMENTWISE_BINARY = {"add", "sub", "mul", "div"}
_AGG_OPS = {"sum", "mean", "max"}


class VNode:
    """One vertex-IR node.

    ``op`` is one of: ``feat`` (leaf: node or edge feature), ``const``,
    an elementwise op, ``agg`` (attrs: agg_op), or ``edge_softmax``.
    """

    __slots__ = ("op", "args", "stage", "name", "attrs", "uid")

    def __init__(self, op: str, args: tuple["VNode", ...], stage: Stage, name: str = "", attrs: dict | None = None) -> None:
        self.op = op
        self.args = args
        self.stage = stage
        self.name = name
        self.attrs = attrs or {}
        self.uid = next(_counter)

    # -- constructors --------------------------------------------------
    @staticmethod
    def feat(name: str, stage: Stage) -> "VNode":
        """A node or edge feature leaf."""
        return VNode("feat", (), stage, name=name)

    @staticmethod
    def const(value: float) -> "VNode":
        """A stage-free scalar constant."""
        return VNode("const", (), Stage.CONST, attrs={"value": float(value)})

    @staticmethod
    def unary(op: str, a: "VNode", **attrs: float) -> "VNode":
        """An elementwise unary op node."""
        assert op in _ELEMENTWISE_UNARY, op
        return VNode(op, (a,), a.stage, attrs=attrs)

    @staticmethod
    def binary(op: str, a: "VNode", b: "VNode") -> "VNode":
        """An elementwise binary op node with stage combination."""
        assert op in _ELEMENTWISE_BINARY, op
        return VNode(op, (a, b), combine_stages(a.stage, b.stage))

    @staticmethod
    def agg(agg_op: str, body: "VNode", direction: str = "in") -> "VNode":
        """An aggregation over in- (default) or out-neighbors; result is DST-stage."""
        assert agg_op in _AGG_OPS, agg_op
        assert direction in ("in", "out"), direction
        if body.stage == Stage.DST:
            raise ValueError(
                "aggregation body is a pure destination-stage expression; "
                "it does not reference any neighbor value"
            )
        return VNode("agg", (body,), Stage.DST, attrs={"agg_op": agg_op, "direction": direction})

    @staticmethod
    def edge_softmax(body: "VNode") -> "VNode":
        """Softmax of a per-edge score over each vertex's in-edges."""
        if body.stage == Stage.CONST:
            raise ValueError("edge_softmax of a constant")
        return VNode("edge_softmax", (body,), Stage.EDGE)

    # -- operator sugar (mirrors the tensor API inside traces) ----------
    def _coerce(self, other) -> "VNode":
        if isinstance(other, VNode):
            return other
        if isinstance(other, (int, float)):
            return VNode.const(other)
        raise TypeError(f"cannot combine VNode with {type(other).__name__}")

    def __add__(self, other) -> "VNode":
        other = self._coerce(other)
        return VNode.binary("add", self, other)

    def __radd__(self, other) -> "VNode":
        # `sum(gen)` starts from int 0: fold it into an aggregation marker is
        # handled by the NbProxy generator protocol; a bare 0 + expr is just
        # the expression.
        if isinstance(other, (int, float)) and other == 0:
            return self
        return VNode.binary("add", self._coerce(other), self)

    def __sub__(self, other) -> "VNode":
        return VNode.binary("sub", self, self._coerce(other))

    def __rsub__(self, other) -> "VNode":
        return VNode.binary("sub", self._coerce(other), self)

    def __mul__(self, other) -> "VNode":
        return VNode.binary("mul", self, self._coerce(other))

    def __rmul__(self, other) -> "VNode":
        return VNode.binary("mul", self._coerce(other), self)

    def __truediv__(self, other) -> "VNode":
        return VNode.binary("div", self, self._coerce(other))

    def __rtruediv__(self, other) -> "VNode":
        return VNode.binary("div", self._coerce(other), self)

    def __neg__(self) -> "VNode":
        return VNode.unary("neg", self)

    # -- traversal -------------------------------------------------------
    def topo(self) -> list["VNode"]:
        """Topological order (leaves first), deduplicated by identity."""
        seen: set[int] = set()
        order: list[VNode] = []

        stack: list[tuple[VNode, bool]] = [(self, False)]
        while stack:
            node, done = stack.pop()
            if done:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for arg in node.args:
                stack.append((arg, False))
        return order

    def leaves(self) -> list["VNode"]:
        """All feature leaves in the DAG."""
        return [n for n in self.topo() if n.op == "feat"]

    def signature(self) -> str:
        """Structural hash-ready string (used as the kernel-cache key).

        Name and attrs are emitted with explicit ``name=…|attrs=…``
        delimiters: a bare concatenation would let distinct DAGs collide on
        the plan-cache key (e.g. a leaf named ``"xslope=0.01"`` vs a leaf
        ``"x"`` with ``attrs={"slope": 0.01}``).
        """
        parts = []
        ids: dict[int, int] = {}
        for i, node in enumerate(self.topo()):
            ids[id(node)] = i
            arg_ids = ",".join(str(ids[id(a)]) for a in node.args)
            attrs = ",".join(f"{k}={v!r}" for k, v in sorted(node.attrs.items()))
            parts.append(f"{i}:{node.op}[{node.stage.value}]({arg_ids})name={node.name}|attrs={attrs}")
        return ";".join(parts)

    def pretty(self) -> str:
        """Human-readable multi-line dump of the DAG."""
        lines = []
        ids: dict[int, int] = {}
        for i, node in enumerate(self.topo()):
            ids[id(node)] = i
            args = ", ".join(f"%{ids[id(a)]}" for a in node.args)
            extra = f" {node.name}" if node.name else ""
            extra += f" {node.attrs}" if node.attrs else ""
            lines.append(f"%{i} = {node.op}.{node.stage.value}({args}){extra}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VNode({self.op}, stage={self.stage.value}, name={self.name!r})"
