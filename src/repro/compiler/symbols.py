"""Tracing proxies: the user-facing vertex-centric programming surface.

The user function receives a :class:`Vertex` ``v``:

* ``v.<name>``            — destination-vertex feature (DST stage);
* ``v.innbs``             — iterable of symbolic in-neighbors;
* ``nb.<name>``           — neighbor feature (SRC stage);
* ``nb.edge.<name>``      — feature of the connecting edge (EDGE stage);
* ``sum(expr for nb in v.innbs)`` or ``v.agg_sum(fn)`` — sum aggregation;
* ``v.agg_mean(fn)`` / ``v.agg_max(fn)``;
* ``v.edge_softmax(fn)``  — softmax of a per-edge score over in-edges
  (GAT-style attention).

Unary math inside traces lives in :data:`vfn` (``vfn.tanh`` etc.), mirroring
Seastar's intercepted operators.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable, Iterator

from repro.compiler.ir import Stage, VNode

__all__ = ["Vertex", "NbProxy", "trace", "vfn", "TraceResult"]


class _EdgeProxy:
    """``nb.edge`` — attribute access yields EDGE-stage feature leaves."""

    def __init__(self, tracer: "_Tracer") -> None:
        object.__setattr__(self, "_tracer", tracer)

    def __getattr__(self, name: str) -> VNode:
        if name.startswith("_"):
            raise AttributeError(name)
        return self._tracer.edge_feat(name)


class NbProxy:
    """The symbolic in-neighbor; one instance represents *all* neighbors."""

    def __init__(self, tracer: "_Tracer") -> None:
        object.__setattr__(self, "_tracer", tracer)
        object.__setattr__(self, "edge", _EdgeProxy(tracer))

    def __getattr__(self, name: str) -> VNode:
        if name.startswith("_"):
            raise AttributeError(name)
        return self._tracer.node_feat(name, Stage.SRC)


class _NbIterable:
    """``v.innbs`` — yields the single symbolic neighbor exactly once, so
    ``sum(expr for nb in v.innbs)`` evaluates the body once and the trailing
    ``0 + expr`` from ``sum`` is folded by ``VNode.__radd__``; the tracer
    wraps the resulting expression in an aggregation node on exit."""

    def __init__(self, tracer: "_Tracer") -> None:
        self._tracer = tracer

    def __iter__(self) -> Iterator[NbProxy]:
        self._tracer.enter_generator_agg()
        yield self._tracer.nb
        self._tracer.exit_generator_agg()


class Vertex:
    """The symbolic center vertex passed to the user function."""

    def __init__(self, tracer: "_Tracer") -> None:
        object.__setattr__(self, "_tracer", tracer)
        object.__setattr__(self, "innbs", _NbIterable(tracer))

    def __getattr__(self, name: str) -> VNode:
        if name.startswith("_"):
            raise AttributeError(name)
        return self._tracer.node_feat(name, Stage.DST)

    # explicit aggregation API ------------------------------------------
    def agg_sum(self, fn: Callable[[NbProxy], VNode]) -> VNode:
        """Sum the body over in-neighbors."""
        return VNode.agg("sum", fn(self._tracer.nb))

    def agg_mean(self, fn: Callable[[NbProxy], VNode]) -> VNode:
        """Average the body over in-neighbors (degree clamped to 1)."""
        return VNode.agg("mean", fn(self._tracer.nb))

    def agg_max(self, fn: Callable[[NbProxy], VNode]) -> VNode:
        """Max of a source-stage payload over in-neighbors."""
        return VNode.agg("max", fn(self._tracer.nb))

    # out-neighbor aggregation (random-walk/diffusion models like DCRNN
    # aggregate along both edge directions; ``nb`` is then the *target* of
    # each out-edge and ``v`` the source)
    def agg_sum_out(self, fn: Callable[[NbProxy], VNode]) -> VNode:
        """Sum the body over out-neighbors (``nb`` is each out-edge's target)."""
        return VNode.agg("sum", fn(self._tracer.nb), direction="out")

    def agg_mean_out(self, fn: Callable[[NbProxy], VNode]) -> VNode:
        """Average the body over out-neighbors."""
        return VNode.agg("mean", fn(self._tracer.nb), direction="out")

    def edge_softmax(self, fn: Callable[[NbProxy], VNode]) -> VNode:
        """Per-edge attention: softmax of the score over each vertex's in-edges."""
        return VNode.edge_softmax(fn(self._tracer.nb))


class _Tracer:
    def __init__(self) -> None:
        self.node_feats: dict[str, VNode] = {}
        self.edge_feats: dict[str, VNode] = {}
        self.nb = NbProxy(self)
        self.vertex = Vertex(self)
        self._gen_depth = 0

    def node_feat(self, name: str, stage: Stage) -> VNode:
        # The same feature name may be read at both stages (e.g. `norm`);
        # they are distinct IR leaves over the same underlying array.
        key = f"{name}@{stage.value}"
        node = self.node_feats.get(key)
        if node is None:
            node = VNode.feat(name, stage)
            self.node_feats[key] = node
        return node

    def edge_feat(self, name: str) -> VNode:
        node = self.edge_feats.get(name)
        if node is None:
            node = VNode.feat(name, Stage.EDGE)
            self.edge_feats[name] = node
        return node

    def enter_generator_agg(self) -> None:
        self._gen_depth += 1

    def exit_generator_agg(self) -> None:
        self._gen_depth -= 1


class TraceResult:
    """Output of :func:`trace`: the root VNode plus leaf inventories."""

    def __init__(self, root: VNode, node_feature_names: list[str], edge_feature_names: list[str]) -> None:
        self.root = root
        self.node_feature_names = node_feature_names
        self.edge_feature_names = edge_feature_names

    def signature(self) -> str:
        """Structural identity string (the kernel-cache key)."""
        return self.root.signature()


def trace(fn: Callable[[Vertex], VNode]) -> TraceResult:
    """Run the vertex-centric function symbolically.

    Generator-style sums (``sum(... for nb in v.innbs)``) come back as the
    bare body expression (the ``0 +`` start value folds away); wrap any
    non-DST root in a sum aggregation — that is the only way a neighbor
    expression can become a per-vertex output.
    """
    tracer = _Tracer()
    root = fn(tracer.vertex)
    if not isinstance(root, VNode):
        raise TypeError(f"vertex function returned {type(root).__name__}, expected an expression")
    if root.stage in (Stage.SRC, Stage.EDGE):
        root = VNode.agg("sum", root)
    node_names = sorted({n.name for n in root.leaves() if n.stage in (Stage.SRC, Stage.DST)})
    edge_names = sorted({n.name for n in root.leaves() if n.stage == Stage.EDGE})
    return TraceResult(root, node_names, edge_names)


def _unary(op: str, **fixed: float) -> Callable[..., VNode]:
    def f(x: VNode, **kw: float) -> VNode:
        if not isinstance(x, VNode):
            raise TypeError(f"vfn.{op} expects a traced expression")
        return VNode.unary(op, x, **{**fixed, **kw})

    f.__name__ = op
    return f


#: math namespace usable inside vertex functions
vfn = SimpleNamespace(
    exp=_unary("exp"),
    log=_unary("log"),
    tanh=_unary("tanh"),
    sigmoid=_unary("sigmoid"),
    relu=_unary("relu"),
    leaky_relu=_unary("leaky_relu", slope=0.01),
)
