"""Kernel runtime: graph context + the primitives generated kernels call.

On real hardware these are the bodies of Seastar's generated CUDA kernels;
here they are vectorized NumPy/SciPy routines sharing the key property of
the vertex-centric design: **feature payloads stay in node space** — the
SpMM streams over CSR without materializing an ``E×F`` message tensor, so
peak memory is ``O(N·F + E)`` instead of the edge-parallel ``O(E·F)``.

:class:`GraphContext` snapshots one graph's structural arrays (both CSR
orientations, shared labels, degrees, degree-ordered node ids) for the
kernels.  The forward-CSR *position order* is the canonical edge order for
all edge-space buffers; label-indexed edge features are converted at bind
time and the backward SpMM permutes weights into backward-CSR order through
the shared labels — the concrete payoff of the paper's edge-labelling
requirement.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.base import STGraphBase
from repro.graph.csr import CSR

__all__ = ["GraphContext", "RUNTIME_NAMESPACE"]


class GraphContext:
    """Structural arrays of one snapshot, prepared for kernel launches.

    ``snapshot_key`` records the graph's ``(position, snapshot_version)``
    identity at build time — the executor's context cache uses it to decide
    when a context built for one pass (e.g. forward at ``t``) is valid for
    another (the LIFO backward step at the same ``t``).
    """

    def __init__(self, graph: STGraphBase, use_degree_order: bool | None = None) -> None:
        fwd: CSR = graph.forward_csr()
        bwd: CSR = graph.backward_csr()
        self.snapshot_key = graph.snapshot_key()
        self.num_nodes = graph.num_nodes
        self.num_edges = fwd.num_edges
        self.fwd_row = fwd.row_offset
        self.fwd_col = fwd.col_indices  # source vertex per in-edge
        self.fwd_eids = fwd.eids
        self.bwd_row = bwd.row_offset
        self.bwd_col = bwd.col_indices  # destination vertex per out-edge
        self.bwd_eids = bwd.eids
        self.in_deg = np.asarray(graph.in_degrees())
        self.out_deg = np.asarray(graph.out_degrees())
        self.fwd_node_ids = fwd.node_ids
        self.bwd_node_ids = bwd.node_ids
        self.use_degree_order = (
            graph.sort_by_degree if use_degree_order is None else use_degree_order
        )
        # destination vertex of each edge, in canonical (fwd) order
        self.dst_per_edge = np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.fwd_row)
        )
        # label -> forward position, then backward position -> forward position
        label_to_fwd = np.empty(self.num_edges, dtype=np.int64)
        label_to_fwd[self.fwd_eids] = np.arange(self.num_edges, dtype=np.int64)
        self.label_to_fwd = label_to_fwd
        self.bwd_to_fwd = label_to_fwd[self.bwd_eids]
        self.in_deg_clamped = np.maximum(self.in_deg, 1).astype(np.float32)
        self._fwd_mat_unweighted: sp.csr_matrix | None = None

    # -- matrix builders ------------------------------------------------
    def fwd_matrix(self, w: np.ndarray | None) -> sp.csr_matrix:
        """in-adjacency as CSR: rows = destinations, cols = sources."""
        n = self.num_nodes
        if w is None:
            if self._fwd_mat_unweighted is None:
                data = np.ones(self.num_edges, dtype=np.float32)
                self._fwd_mat_unweighted = sp.csr_matrix(
                    (data, self.fwd_col, self.fwd_row), shape=(n, n), copy=False
                )
            return self._fwd_mat_unweighted
        return sp.csr_matrix(
            (w.astype(np.float32, copy=False), self.fwd_col, self.fwd_row),
            shape=(n, n),
            copy=False,
        )

    def bwd_matrix(self, w_fwd_order: np.ndarray | None) -> sp.csr_matrix:
        """out-adjacency: rows = sources, cols = destinations, with edge
        weights permuted from canonical order via the shared labels."""
        n = self.num_nodes
        if w_fwd_order is None:
            data = np.ones(self.num_edges, dtype=np.float32)
        else:
            data = w_fwd_order[self.bwd_to_fwd].astype(np.float32, copy=False)
        return sp.csr_matrix((data, self.bwd_col, self.bwd_row), shape=(n, n), copy=False)

    def bind_edge_feature(self, label_indexed: np.ndarray) -> np.ndarray:
        """Convert a label-indexed edge array to canonical (fwd) order."""
        return label_indexed[self.fwd_eids]

    def edge_grad_to_labels(self, grad_fwd_order: np.ndarray) -> np.ndarray:
        """Convert a canonical-order edge gradient back to label order."""
        out = np.empty_like(grad_fwd_order)
        out[self.fwd_eids] = grad_fwd_order
        return out


# ---------------------------------------------------------------------------
# Primitives called by generated kernels
# ---------------------------------------------------------------------------
def _align(a, b):
    """Broadcast a (N,) operand against a (N, F) one column-wise."""
    a_nd = getattr(a, "ndim", 0)
    b_nd = getattr(b, "ndim", 0)
    if a_nd == 1 and b_nd == 2:
        return a[:, None], b
    if a_nd == 2 and b_nd == 1:
        return a, b[:, None]
    return a, b


def ew_add(a, b):
    """Broadcasting add (scalar-width operands align column-wise)."""
    a, b = _align(a, b)
    return a + b


def ew_sub(a, b):
    """Broadcasting subtract."""
    a, b = _align(a, b)
    return a - b


def ew_mul(a, b):
    """Broadcasting multiply."""
    a, b = _align(a, b)
    return a * b


def ew_div(a, b):
    """Broadcasting divide."""
    a, b = _align(a, b)
    return a / b


def ew_neg(a):
    """Negate."""
    return -a


def ew_exp(a):
    """Exponential."""
    return np.exp(a)


def ew_log(a):
    """Natural log."""
    return np.log(a)


def ew_tanh(a):
    """Hyperbolic tangent."""
    return np.tanh(a)


def ew_sigmoid(a):
    """Numerically stable sigmoid."""
    out = np.empty_like(a)
    pos = a >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
    e = np.exp(a[~pos])
    out[~pos] = e / (1.0 + e)
    return out


def ew_relu(a):
    """ReLU."""
    return np.maximum(a, 0.0)


def ew_leaky_relu(a, slope=0.01):
    """Leaky ReLU."""
    return np.where(a > 0, a, slope * a)


def ew_recip(a):
    """Reciprocal."""
    return 1.0 / a


def spmm(ctx: GraphContext, w, x, direction: str = "in"):
    """``out[v] = Σ_{e∈in(v)} w[e]·x[src[e]]`` without E×F materialization
    (``direction="out"`` aggregates over out-edges instead:
    ``out[u] = Σ_{e∈out(u)} w[e]·x[dst[e]]``).

    When degree ordering is enabled, rows are processed in descending
    degree order (the paper's node_ids mechanism, Figure 3) by permuting
    the CSR rows; the result is scattered back to vertex order.
    """
    if direction == "in":
        mat, order = ctx.fwd_matrix(w), ctx.fwd_node_ids
    else:
        mat, order = ctx.bwd_matrix(w), ctx.bwd_node_ids
    x32 = x.astype(np.float32, copy=False)
    if ctx.use_degree_order:
        out_perm = mat[order] @ x32
        out = np.empty_like(out_perm)
        out[order] = out_perm
        return out
    return mat @ x32


def spmm_T(ctx: GraphContext, w, g, direction: str = "in"):
    """Payload gradient of :func:`spmm`: the transpose product.

    ``direction`` names the *forward* direction being differentiated, so
    the adjoint of an in-aggregation runs over the backward CSR
    (out-neighbors) — which is exactly why the graph abstraction maintains
    both orientations with shared edge labels — and vice versa."""
    return spmm(ctx, w, g, direction="out" if direction == "in" else "in")


def segment_sum(ctx: GraphContext, w):
    """Sum edge scalars per destination vertex (safe for empty rows)."""
    cs = np.concatenate([[0.0], np.cumsum(w, dtype=np.float64)])
    return (cs[ctx.fwd_row[1:]] - cs[ctx.fwd_row[:-1]]).astype(np.float32)


def segment_sum_dst(ctx: GraphContext, g):
    """Alias of :func:`segment_sum` (gradient of gather_dst)."""
    return segment_sum(ctx, g)


def scatter_src(ctx: GraphContext, g):
    """Sum edge scalars per source vertex (gradient of gather_src)."""
    return np.bincount(ctx.fwd_col, weights=g, minlength=ctx.num_nodes).astype(np.float32)


def gather_src(ctx: GraphContext, x):
    """Replicate a node value per edge from its source."""
    return x[ctx.fwd_col]


def gather_dst(ctx: GraphContext, x):
    """Replicate a node value per edge from its destination."""
    return x[ctx.dst_per_edge]


def segment_max(ctx: GraphContext, z):
    """Max of edge scalars per destination (−inf for isolated vertices)."""
    out = np.full(ctx.num_nodes, -np.inf, dtype=np.float32)
    np.maximum.at(out, ctx.dst_per_edge, z)
    return out


def edge_softmax(ctx: GraphContext, z):
    """Numerically stable softmax of edge scores over each in-edge group."""
    m = segment_max(ctx, z)
    shifted = z - m[ctx.dst_per_edge]
    e = np.exp(shifted)
    denom = segment_sum(ctx, e)
    return (e / denom[ctx.dst_per_edge]).astype(np.float32)


def edge_softmax_bwd(ctx: GraphContext, alpha, g):
    """VJP of :func:`edge_softmax` within each in-edge group."""
    s = segment_sum(ctx, alpha * g)
    return alpha * (g - s[ctx.dst_per_edge])


def edge_dot(ctx: GraphContext, x, g, direction: str = "in"):
    """Per-edge feature dot (gradient of spmm weights): ⟨x[src], g[dst]⟩
    for in-aggregation, ⟨x[dst], g[src]⟩ for out-aggregation."""
    a_idx, b_idx = (ctx.fwd_col, ctx.dst_per_edge) if direction == "in" else (ctx.dst_per_edge, ctx.fwd_col)
    if x.ndim == 1:
        return x[a_idx] * g[b_idx]
    return np.einsum("ef,ef->e", x[a_idx], g[b_idx]).astype(np.float32)


def agg_max(ctx: GraphContext, x):
    """Max-aggregate a node payload over in-edges (0 for isolated nodes)."""
    gathered = x[ctx.fwd_col]
    if gathered.ndim == 1:
        out = np.full(ctx.num_nodes, -np.inf, dtype=np.float32)
        np.maximum.at(out, ctx.dst_per_edge, gathered)
        out[ctx.in_deg == 0] = 0.0
        return out
    out = np.full((ctx.num_nodes, gathered.shape[1]), -np.inf, dtype=np.float32)
    np.maximum.at(out, ctx.dst_per_edge, gathered)
    out[ctx.in_deg == 0] = 0.0
    return out


def agg_max_bwd(ctx: GraphContext, x, out_fwd, g):
    """Route max-agg gradients to the (tie-split) argmax sources."""
    gathered = x[ctx.fwd_col]
    winner = gathered == out_fwd[ctx.dst_per_edge]
    if gathered.ndim == 1:
        counts = np.bincount(ctx.dst_per_edge, weights=winner, minlength=ctx.num_nodes)
        share = winner / np.maximum(counts, 1)[ctx.dst_per_edge]
        contrib = share * g[ctx.dst_per_edge]
        return np.bincount(ctx.fwd_col, weights=contrib, minlength=ctx.num_nodes).astype(np.float32)
    counts = np.zeros((ctx.num_nodes, gathered.shape[1]), dtype=np.float32)
    np.add.at(counts, ctx.dst_per_edge, winner.astype(np.float32))
    share = winner / np.maximum(counts, 1)[ctx.dst_per_edge]
    contrib = share * g[ctx.dst_per_edge]
    grad = np.zeros_like(x, dtype=np.float32)
    np.add.at(grad, ctx.fwd_col, contrib)
    return grad


def ones_node(ctx: GraphContext):
    """All-ones per-vertex vector."""
    return np.ones(ctx.num_nodes, dtype=np.float32)


def in_deg(ctx: GraphContext):
    """In-degree per vertex as float32."""
    return ctx.in_deg.astype(np.float32)


def in_deg_clamped(ctx: GraphContext):
    """In-degree clamped to >= 1 (mean-aggregation denominator)."""
    return ctx.in_deg_clamped


def out_deg(ctx: GraphContext):
    """Out-degree per vertex as float32."""
    return ctx.out_deg.astype(np.float32)


def out_deg_clamped(ctx: GraphContext):
    """Out-degree clamped to >= 1."""
    return np.maximum(ctx.out_deg, 1).astype(np.float32)


def colsum(a):
    """Static broadcast adjoint: reduce an (N, F) grad to a scalar-width
    (N,) operand."""
    return a.sum(axis=1) if a.ndim == 2 else a


def relu_mask(out):
    """1 where the (saved) output is positive, else 0."""
    return (out > 0).astype(np.float32)


def leaky_mask(x, slope=0.01):
    """1 for positive inputs, ``slope`` otherwise."""
    return np.where(x > 0, np.float32(1.0), np.float32(slope))


#: globals handed to generated kernel modules
RUNTIME_NAMESPACE = {
    "np": np,
    "ew_add": ew_add,
    "ew_sub": ew_sub,
    "ew_mul": ew_mul,
    "ew_div": ew_div,
    "ew_neg": ew_neg,
    "ew_exp": ew_exp,
    "ew_log": ew_log,
    "ew_tanh": ew_tanh,
    "ew_sigmoid": ew_sigmoid,
    "ew_relu": ew_relu,
    "ew_leaky_relu": ew_leaky_relu,
    "ew_recip": ew_recip,
    "spmm": spmm,
    "spmm_T": spmm_T,
    "segment_sum": segment_sum,
    "segment_sum_dst": segment_sum_dst,
    "scatter_src": scatter_src,
    "gather_src": gather_src,
    "gather_dst": gather_dst,
    "segment_max": segment_max,
    "edge_softmax": edge_softmax,
    "edge_softmax_bwd": edge_softmax_bwd,
    "edge_dot": edge_dot,
    "agg_max": agg_max,
    "agg_max_bwd": agg_max_bwd,
    "ones_node": ones_node,
    "in_deg": in_deg,
    "in_deg_clamped": in_deg_clamped,
    "out_deg": out_deg,
    "out_deg_clamped": out_deg_clamped,
    "colsum": colsum,
    "relu_mask": relu_mask,
    "leaky_mask": leaky_mask,
}
