"""Wiring compiled vertex programs into the tensor engine's autodiff.

:class:`_GraphAggregationTape` is the custom autograd node: its forward runs
the generated forward kernel and pushes the *pruned* saved-state onto the
executor's State Stack (instead of holding it in the tape, as every other op
does); its backward pops the State Stack, asks the executor for the correct
backward snapshot context (Graph Stack / Get-Backward-Graph), and runs the
generated backward kernel.  This is the precise point where the paper's
"temporally-aware executor" meets the deep-learning backend while staying
backend-agnostic — the tape node only uses the generic tape protocol.

:class:`VertexCentricLayer` is the base class for STGraph's GNN layers: it
requests its :class:`~repro.compiler.plan.ProgramPlan` from the process-wide
plan cache (so identical layers share one compilation) and exposes
``aggregate`` to subclasses.  The execution engine resolved for each
aggregation is, in priority order: the executor's override (differential
testing / fleet-wide switches), else the program's own engine.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.compiler.program import VertexProgram, compile_vertex_program
from repro.compiler.runtime import GraphContext
from repro.core.engine import ExecutionEngine, get_engine
from repro.core.executor import TemporalExecutor
from repro.device import current_device
from repro.obs.flight import current_flight_recorder
from repro.obs.tracer import current_tracer
from repro.resilience.faults import InjectedKernelFault
from repro.tensor import nn
from repro.tensor.tensor import Tensor, is_grad_enabled

__all__ = ["VertexCentricLayer", "graph_aggregate"]


def _differential_check(
    program: VertexProgram,
    engine: ExecutionEngine | None,
    call,
    result,
    direction: str,
) -> None:
    """Compare a retried kernel execution against the interpreter oracle.

    The interpreter runs the same op order over the same primitives, so any
    difference is bitwise-detectable and means the retried launch produced
    corrupt output rather than a clean recovery.
    """
    resolved = engine if engine is not None else program.engine
    if resolved.name == "interpreter":
        return  # the result *is* the oracle
    oracle = call(get_engine("interpreter"))
    if direction == "fwd":
        ok = np.array_equal(np.asarray(result[0]), np.asarray(oracle[0]))
    else:
        ok = set(result) == set(oracle) and all(
            np.array_equal(np.asarray(result[k]), np.asarray(oracle[k])) for k in result
        )
    if not ok:
        raise RuntimeError(
            f"differential check failed after kernel retry: {program.name} "
            f"({direction}) disagrees with the interpreter oracle"
        )


#: Degradation order per starting engine: the compiled tier walks down to
#: the generated-kernel engine before surrendering to the interpreter (all
#: three are bitwise-identical, so each step only trades speed for safety).
_FALLBACK_LADDER: dict[str, tuple[str, ...]] = {
    "compiled": ("kernel", "interpreter"),
    "interpreter": (),
}
_DEFAULT_LADDER: tuple[str, ...] = ("interpreter",)


def _fallback_chain(engine_name: str) -> tuple[str, ...]:
    """Engines to try, in order, after the current engine exhausts its retry."""
    return _FALLBACK_LADDER.get(engine_name, _DEFAULT_LADDER)


def _resilient_run(
    executor: TemporalExecutor,
    program: VertexProgram,
    engine: ExecutionEngine | None,
    call,
    direction: str,
    timestamp: int,
):
    """Run ``call(engine)`` under the engine degradation ladder.

    An :class:`~repro.resilience.faults.InjectedKernelFault` triggers
    exactly one retry on the current engine; if the retry faults too, the
    aggregation walks down the fallback ladder — compiled → kernel →
    interpreter, kernel → interpreter — until an engine completes (every
    tier is bitwise-identical by construction, so training continues
    unperturbed).  A retry that *succeeds* is differentially checked against
    the interpreter oracle before its result is trusted.  Returns
    ``(result, engine_used)`` so the tape can pin backward to the engine
    forward actually ran on.
    """
    try:
        return call(engine), engine
    except InjectedKernelFault:
        device = current_device()
        tracer = current_tracer()
        recorder = current_flight_recorder()
        executor.kernel_retries += 1
        device.profiler.count("kernel_retries")
        if tracer.enabled:
            tracer.instant(
                "fault.retry", "fault",
                program=program.name, dir=direction, t=timestamp,
            )
        if recorder.enabled:
            recorder.record(
                "counter", "kernel_retry",
                program=program.name, dir=direction, t=timestamp,
            )
        try:
            result = call(engine)
        except InjectedKernelFault:
            resolved = engine if engine is not None else program.engine
            last_fault: InjectedKernelFault | None = None
            for fb_name in _fallback_chain(resolved.name):
                fallback = get_engine(fb_name)
                executor.engine_fallbacks += 1
                device.profiler.count("engine_fallbacks")
                if tracer.enabled:
                    tracer.instant(
                        "fault.engine_fallback", "fault",
                        program=program.name, dir=direction, t=timestamp,
                        engine=fallback.name,
                    )
                if recorder.enabled:
                    # A ladder step is a failure edge worth a full window
                    # dump: record the step, then drain the ring.
                    recorder.record(
                        "counter", "engine_fallback",
                        program=program.name, dir=direction, t=timestamp,
                        engine=fallback.name,
                    )
                    recorder.drain("engine_fallback")
                try:
                    return call(fallback), fallback
                except InjectedKernelFault as exc:
                    last_fault = exc
                    continue
            raise last_fault if last_fault is not None else RuntimeError(
                f"no fallback engine for {resolved.name!r}"
            )
        _differential_check(program, engine, call, result, direction)
        return result, engine


class _GraphAggregationTape:
    """Autograd tape node for one compiled aggregation at one timestamp.

    Implements the context protocol ``Tensor.backward`` expects (``inputs``
    and ``backward(grad)``), but manages its saved state through the
    executor's stacks rather than tape-local references.  The engine the
    forward ran on is pinned so forward and backward of one aggregation
    always execute on the same engine.
    """

    def __init__(
        self,
        program: VertexProgram,
        executor: TemporalExecutor,
        timestamp: int,
        token: int,
        tensor_slots: list[tuple[str, str]],
        inputs: tuple[Tensor, ...],
        engine: ExecutionEngine | None = None,
    ) -> None:
        self.program = program
        self.executor = executor
        self.timestamp = timestamp
        self.token = token
        self.tensor_slots = tensor_slots  # (feature_name, "node" | "edge")
        self.inputs = inputs
        self.engine = engine

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray | None, ...]:
        device = current_device()
        ctx = self.executor.backward_context(self.timestamp)
        saved = self.executor.pop_state(self.token)

        def run_backward(engine: ExecutionEngine | None):
            return self.program.backward(ctx, grad, saved, engine=engine)

        with current_tracer().span("backward/" + self.program.name, "gnn", t=self.timestamp):
            with device.profiler.phase("gnn"):
                grads, _ = _resilient_run(
                    self.executor, self.program, self.engine, run_backward,
                    direction="bwd", timestamp=self.timestamp,
                )
        return tuple(grads.get(name) for name, _kind in self.tensor_slots)


def graph_aggregate(
    program: VertexProgram,
    executor: TemporalExecutor,
    node_feats: Mapping[str, Tensor | np.ndarray],
    edge_feats: Mapping[str, Tensor | np.ndarray] | None = None,
) -> Tensor:
    """Run a compiled aggregation at the executor's current timestamp.

    Tensor-valued features participate in autodiff; ndarray-valued features
    (degree norms etc.) are structural constants.
    """
    device = current_device()
    ctx: GraphContext = executor.current_context()
    timestamp = executor.current_timestamp
    assert timestamp is not None
    engine = executor.engine  # None → the program's own engine

    node_arrays: dict[str, np.ndarray] = {}
    edge_arrays: dict[str, np.ndarray] = {}
    tensor_slots: list[tuple[str, str]] = []
    tensor_inputs: list[Tensor] = []
    for name, value in node_feats.items():
        if isinstance(value, Tensor):
            node_arrays[name] = value.data
            tensor_slots.append((name, "node"))
            tensor_inputs.append(value)
        else:
            node_arrays[name] = np.asarray(value)
    for name, value in (edge_feats or {}).items():
        if isinstance(value, Tensor):
            edge_arrays[name] = value.data
            tensor_slots.append((name, "edge"))
            tensor_inputs.append(value)
        else:
            edge_arrays[name] = np.asarray(value)

    def run_forward(eng: ExecutionEngine | None):
        return program.forward(ctx, node_arrays, edge_arrays or None, engine=eng)

    with current_tracer().span("forward/" + program.name, "gnn", t=timestamp):
        with device.profiler.phase("gnn"):
            (out_np, saved), engine = _resilient_run(
                executor, program, engine, run_forward,
                direction="fwd", timestamp=timestamp,
            )
    out = Tensor(out_np)

    if is_grad_enabled() and any(t.requires_grad or t._ctx is not None for t in tensor_inputs):
        token = executor.push_state(saved, tag=program.name)
        out._ctx = _GraphAggregationTape(
            program, executor, timestamp, token, tensor_slots, tuple(tensor_inputs),
            engine=engine,
        )
    return out


class VertexCentricLayer(nn.Module):
    """Base class for STGraph GNN layers defined by a vertex program."""

    def __init__(
        self,
        vertex_fn: Callable,
        feature_widths: Mapping[str, str],
        grad_features: set[str],
        name: str,
        fused: bool = True,
        state_stack_opt: bool = True,
        engine: str | ExecutionEngine = "kernel",
    ) -> None:
        super().__init__()
        self.program = compile_vertex_program(
            vertex_fn,
            feature_widths=feature_widths,
            grad_features=grad_features,
            name=name,
            fused=fused,
            state_stack_opt=state_stack_opt,
            engine=engine,
        )

    @property
    def plan(self):
        """The layer's cached :class:`~repro.compiler.plan.ProgramPlan`."""
        return self.program.plan

    @property
    def plan_id(self) -> str:
        """The plan's content-hash identity in the process-wide cache."""
        return self.program.plan_id

    def aggregate(
        self,
        executor: TemporalExecutor,
        node_feats: Mapping[str, Tensor | np.ndarray],
        edge_feats: Mapping[str, Tensor | np.ndarray] | None = None,
    ) -> Tensor:
        """Run this layer's compiled aggregation at the executor's current timestamp."""
        return graph_aggregate(self.program, executor, node_feats, edge_feats)

    @property
    def generated_forward_source(self) -> str:
        """Source of the generated forward kernel."""
        return self.program.forward_source

    @property
    def generated_backward_source(self) -> str:
        """Source of the generated backward kernel."""
        return self.program.backward_source
