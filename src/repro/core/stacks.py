"""The State Stack and Graph Stack (paper §V-A.2 / §V-B, Figure 2).

Training a TGNN processes a sequence of timestamps forward, then walks the
same timestamps backward in LIFO order.  The **State Stack** keeps, per
forward aggregation, exactly the input state its backward needs (already
pruned by the compiler's saved-tensor analysis); the **Graph Stack** keeps,
per timestamp, which snapshot was used, so the backward pass can reposition
a dynamic graph before running backward kernels.

``StateStack.pop(token)`` enforces LIFO by default.  Independent branches
inside one timestamp (e.g. a TGCN's three gate convolutions) may legally
drain in any order *within* the timestamp, so entries also carry their
timestamp and out-of-order pops are permitted inside the top timestamp
group while cross-timestamp violations raise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

__all__ = ["StackEntry", "StateStack", "GraphStack"]

_tokens = itertools.count()


@dataclass
class StackEntry:
    """One saved forward state."""

    token: int
    timestamp: int
    saved: dict[str, Any]
    tag: str = ""
    #: bytes as measured at push time; the running total subtracts exactly
    #: this on pop, so later mutation of ``saved`` cannot skew accounting.
    bytes_at_push: int = 0

    def nbytes(self) -> int:
        """Bytes retained by this entry's saved arrays."""
        total = 0
        for v in self.saved.values():
            total += getattr(v, "nbytes", 0)
        return total


class StateStack:
    """LIFO store of per-aggregation forward state.

    Byte accounting is O(1) per operation: a running ``_current_bytes``
    total is updated on push/pop/clear instead of re-summing every retained
    entry, so long sequences don't pay quadratic bookkeeping.
    """

    def __init__(self) -> None:
        self._entries: list[StackEntry] = []
        self._current_bytes = 0
        self.peak_depth = 0
        self.peak_bytes = 0
        self.total_pushes = 0
        #: bytes of the most recent push / pop, for trace instrumentation
        self.last_push_bytes = 0
        self.last_pop_bytes = 0

    def push(self, timestamp: int, saved: dict[str, Any], tag: str = "") -> int:
        """Push one aggregation's saved state; returns the pop token."""
        entry = StackEntry(next(_tokens), timestamp, saved, tag)
        entry.bytes_at_push = entry.nbytes()
        self._entries.append(entry)
        self._current_bytes += entry.bytes_at_push
        self.last_push_bytes = entry.bytes_at_push
        self.total_pushes += 1
        self.peak_depth = max(self.peak_depth, len(self._entries))
        self.peak_bytes = max(self.peak_bytes, self._current_bytes)
        return entry.token

    def pop(self, token: int) -> dict[str, Any]:
        """Pop the entry with ``token``.

        Must be in the same timestamp group as the current top; popping an
        entry buried under a *different* timestamp indicates the executor
        lost LIFO discipline and raises.
        """
        if not self._entries:
            raise RuntimeError("state stack underflow")
        top_ts = self._entries[-1].timestamp
        for i in range(len(self._entries) - 1, -1, -1):
            entry = self._entries[i]
            if entry.token == token:
                if entry.timestamp != top_ts:
                    raise RuntimeError(
                        f"state stack LIFO violation: popping timestamp "
                        f"{entry.timestamp} under top timestamp {top_ts}"
                    )
                del self._entries[i]
                self._current_bytes -= entry.bytes_at_push
                self.last_pop_bytes = entry.bytes_at_push
                return entry.saved
            if entry.timestamp != top_ts:
                break
        raise KeyError(f"state stack entry {token} not found in top timestamp group")

    def current_bytes(self) -> int:
        """Bytes currently retained across all entries (O(1) running total)."""
        return self._current_bytes

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no saved state is retained."""
        return not self._entries

    def clear(self) -> None:
        """Drop all entries (recovery path; normal draining uses pop)."""
        self._entries.clear()
        self._current_bytes = 0


class GraphStack:
    """LIFO record of snapshot timestamps used in a sequence's forward pass."""

    def __init__(self) -> None:
        self._stack: list[int] = []
        self.peak_depth = 0

    def push(self, timestamp: int) -> None:
        """Record a forward timestamp."""
        self._stack.append(int(timestamp))
        self.peak_depth = max(self.peak_depth, len(self._stack))

    def pop(self) -> int:
        """Remove and return the most recent timestamp."""
        if not self._stack:
            raise RuntimeError("graph stack underflow")
        return self._stack.pop()

    def top(self) -> int | None:
        """The most recent timestamp, or None when empty."""
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    @property
    def is_empty(self) -> bool:
        """True when no timestamps are recorded."""
        return not self._stack

    def clear(self) -> None:
        """Drop all recorded timestamps."""
        self._stack.clear()
