"""Backend interface and factory (paper §VI-1).

Seastar scattered backend-specific code across DGL-Hack; STGraph instead
"introduc[es] a dedicated backend interface within the framework to house
callback functions, kernel wrappers, and any backend-specific functions",
decoupled with the Factory pattern.  All framework↔backend interaction goes
through a :class:`BackendInterface`; the bundled ``"repro"`` backend adapts
the in-tree tensor engine, and registering another implementation (JAX,
PyTorch, ...) requires no framework changes — which is what the ✓ in
Table I's "Agnostic" column means for STGraph.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable

import numpy as np

__all__ = ["BackendInterface", "register_backend", "get_backend", "available_backends"]


class BackendInterface(abc.ABC):
    """What STGraph needs from a deep-learning backend."""

    name: str = "abstract"

    # -- tensor bridge ---------------------------------------------------
    @abc.abstractmethod
    def is_tensor(self, value: Any) -> bool:
        """True if ``value`` is this backend's differentiable tensor type."""

    @abc.abstractmethod
    def to_array(self, tensor: Any) -> np.ndarray:
        """Raw ndarray view of a backend tensor."""

    @abc.abstractmethod
    def from_array(self, array: np.ndarray, requires_grad: bool = False) -> Any:
        """Wrap an ndarray as a backend tensor."""

    # -- autodiff bridge ---------------------------------------------------
    @abc.abstractmethod
    def attach_tape_node(
        self,
        output_array: np.ndarray,
        inputs: tuple[Any, ...],
        backward_cb: Callable[[np.ndarray], tuple[np.ndarray | None, ...]],
    ) -> Any:
        """Create an output tensor whose backward invokes ``backward_cb``.

        This is the single hook the executor uses to splice generated
        backward kernels into the backend's reverse sweep.
        """

    # -- training bridge --------------------------------------------------
    @abc.abstractmethod
    def parameters_of(self, module: Any) -> Iterable[Any]:
        """Trainable parameters of a backend module."""


class ReproBackend(BackendInterface):
    """Adapter for the in-tree autodiff tensor engine."""

    name = "repro"

    def is_tensor(self, value: Any) -> bool:
        """True for the in-tree :class:`Tensor`."""
        from repro.tensor.tensor import Tensor

        return isinstance(value, Tensor)

    def to_array(self, tensor: Any) -> np.ndarray:
        """The tensor's ndarray view."""
        return tensor.data

    def from_array(self, array: np.ndarray, requires_grad: bool = False) -> Any:
        """Wrap an ndarray as a :class:`Tensor`."""
        from repro.tensor.tensor import Tensor

        return Tensor(array, requires_grad=requires_grad)

    def attach_tape_node(self, output_array, inputs, backward_cb):
        """Create a Tensor whose tape node calls ``backward_cb``."""
        from repro.tensor.tensor import Tensor

        out = Tensor(output_array)

        class _Node:
            def __init__(self) -> None:
                self.inputs = inputs

            def backward(self, grad: np.ndarray):
                return backward_cb(grad)

        out._ctx = _Node()
        return out

    def parameters_of(self, module: Any):
        """Delegate to ``module.parameters()``."""
        return module.parameters()


_REGISTRY: dict[str, Callable[[], BackendInterface]] = {}
_INSTANCES: dict[str, BackendInterface] = {}


def register_backend(name: str, factory: Callable[[], BackendInterface]) -> None:
    """Register a backend factory under ``name`` (Factory pattern)."""
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} already registered")
    _REGISTRY[name] = factory


def get_backend(name: str = "repro") -> BackendInterface:
    """Instantiate (once) and return the named backend."""
    if name not in _INSTANCES:
        if name not in _REGISTRY:
            raise KeyError(f"unknown backend {name!r}; available: {sorted(_REGISTRY)}")
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


register_backend("repro", ReproBackend)
