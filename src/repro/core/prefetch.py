"""Asynchronous snapshot prefetch for pipelined temporal execution.

Algorithm 1 walks a DTDG strictly in order: position at ``t`` (Get-Graph),
run the GNN, move on.  Snapshot positioning + materialization is structural
work on the critical path — the ``graph_update`` share of Figure 9.  The
:class:`PrefetchScheduler` takes the *materialization* half off that path:
while the training thread computes timestamp ``t``, a worker thread runs a
side-effect-free :class:`~repro.graph.snapshot_builder.SnapshotBuilder`
over the same DTDG to materialize snapshots ``t+1 .. t+k`` and stages them
in the graph's thread-safe
:class:`~repro.graph.snapshot_builder.SnapshotCache` — the single handoff
point.  When the main thread arrives at ``t+1``, ``Get-Graph`` resolves
only the ``(timestamp, version)`` identity from the shared version map
(deferred positioning — no update batches are replayed on the training
thread) and the relabel + Algorithm 3 build is served from the staged
entry; the physical PMA catches up lazily on a genuine cache miss.

``staleness`` (the ``pipeline`` knob) bounds how far ahead the worker may
run: ``0`` disables the scheduler entirely (strictly serial — the trainer
never constructs one), ``k`` lets at most ``k`` snapshots be queued ahead
of the consumer.  Because prefetched snapshots are built by replaying the
*same* update batches against the *same* shared version map, a staged entry
is bitwise identical to what the main thread would have built — pipelining
changes which thread does the work, never the numbers (the differential
test in ``tests/test_pipeline_differential.py`` gates this).

Scheduling wraps around the end of the DTDG (``(t + i) % T``): while the
last timestamps of an epoch compute, the worker is already staging ``t=0``
for the next epoch, so in steady state only the very first build of a run
misses.

Thread-context rules: the worker runs under the device and tracer captured
when the scheduler starts (spans land in a ``prefetch-<lane>`` track of the
Chrome export; build time is billed to the ``"prefetch"`` profiler phase,
not ``"graph_update"``).  The fault injector is deliberately *not*
installed on the worker — planned fault positions refer to main-thread
graph operations, and prefetching must not shift them.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.analysis.sanitizer import new_condition
from repro.device import current_device, use_device
from repro.obs.tracer import current_tracer, use_tracer

__all__ = ["PrefetchScheduler"]

#: Generous bound on joining the worker at shutdown; a single snapshot
#: build is orders of magnitude faster, so expiry indicates a wedged worker
#: (reported via RuntimeError rather than leaking the thread silently).
_JOIN_TIMEOUT = 30.0


class PrefetchScheduler:
    """Builds upcoming snapshots on a worker thread, ``staleness`` ahead.

    Owned by :class:`~repro.core.executor.TemporalExecutor`; one scheduler
    drives one graph.  The worker thread is started lazily on the first
    :meth:`schedule_ahead` and is a daemon (a crashed training process never
    hangs on it), but normal teardown goes through :meth:`stop`, which
    drains the queue and joins — no dangling thread.
    """

    def __init__(self, graph, staleness: int = 1) -> None:
        if staleness < 1:
            raise ValueError("PrefetchScheduler requires staleness >= 1; use no scheduler for 0")
        self.graph = graph
        self.staleness = int(staleness)
        self.builder = graph.snapshot_builder()
        self._cache = graph._csr_cache
        self._num_ts = int(graph.dtdg.num_timestamps)
        self._cv = new_condition(name="PrefetchScheduler._cv")
        self._pending: deque[int] = deque()
        self._queued: set[int] = set()
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._device = None
        self._tracer = None
        #: timestamps handed to the worker over the scheduler's lifetime
        self.scheduled_total = 0
        #: first exception raised inside the worker (None if healthy);
        #: the graph degrades to synchronous builds, so this is diagnostic.
        self.worker_error: BaseException | None = None

    # ------------------------------------------------------------------
    @property
    def built_total(self) -> int:
        """Snapshots actually materialized by the worker's builder."""
        return self.builder.builds

    @property
    def running(self) -> bool:
        """True while the worker thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def _ensure_started(self) -> None:
        if self.running:
            return
        # Capture the *scheduling* thread's device and tracer: the worker
        # installs them on itself, so allocator accounting and spans from
        # prefetch builds land in the same run's registries.
        self._device = current_device()
        self._tracer = current_tracer()
        # `_stopping` is condvar-guarded everywhere else (stop() flips it
        # under `_cv` before notifying); keep the restart path disciplined
        # too so a stop() racing a lazy restart cannot lose its flag.
        with self._cv:
            self._stopping = False
        self.graph.attach_prefetcher(True)
        self._thread = threading.Thread(
            target=self._run, name="repro-prefetch", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Producer side (training thread)
    # ------------------------------------------------------------------
    def schedule_ahead(self, t: int) -> int:
        """Queue builds for the ``staleness`` timestamps after ``t``.

        Wraps around the end of the DTDG so the next epoch's first
        snapshots are staged while the current epoch finishes.  Timestamps
        already cached, staged, queued, or in flight are skipped — as is the
        currently-executing timestamp itself, which the wraparound reaches
        whenever ``staleness >= T`` (degenerate ``T == 1`` sequences made
        the worker rebuild the snapshot the main thread was already using,
        wasting the builder and polluting the hit/miss counters).  Returns
        the number of timestamps newly queued.
        """
        self._ensure_started()
        queued = 0
        self_ts = int(t) % self._num_ts
        with self._cv:
            for i in range(1, self.staleness + 1):
                ts = (int(t) + i) % self._num_ts
                if ts == self_ts:
                    continue
                if ts in self._queued or self._cache.inflight(ts):
                    continue
                if self._cached_key(ts) is not None:
                    continue
                if len(self._pending) >= self.staleness:
                    break
                self._pending.append(ts)
                self._queued.add(ts)
                queued += 1
                self.scheduled_total += 1
            if queued:
                self._cv.notify_all()
        return queued

    def _cached_key(self, ts: int):
        """The cache key of ``ts`` if its snapshot is already available.

        A timestamp whose version was never assigned cannot be cached; a
        known version is checked against the cache (LRU + staging).
        """
        version = self.graph._versions.get(int(ts))
        if version is None:
            return None
        key = (int(ts), version)
        return key if self._cache.contains(key) else None

    def cancel_pending(self) -> int:
        """Drop every queued-but-not-started build; returns how many."""
        with self._cv:
            dropped = len(self._pending)
            self._pending.clear()
            self._queued.clear()
        return dropped

    def stop(self) -> None:
        """Cancel pending work, join the worker, detach from the graph.

        Safe to call repeatedly and from ``finally`` blocks; the scheduler
        restarts lazily on the next :meth:`schedule_ahead`.
        """
        thread = self._thread
        with self._cv:
            self._pending.clear()
            self._queued.clear()
            self._stopping = True
            self._cv.notify_all()
        if thread is not None:
            thread.join(timeout=_JOIN_TIMEOUT)
            if thread.is_alive():  # pragma: no cover - wedged worker
                raise RuntimeError("prefetch worker did not stop within timeout")
        self._thread = None
        self.graph.attach_prefetcher(False)

    def stats(self) -> dict[str, int]:
        """Scheduler-side accounting (cache-side hit/miss lives on the graph)."""
        with self._cv:
            pending = len(self._pending)
        return {
            "prefetch_scheduled": self.scheduled_total,
            "prefetch_built": self.built_total,
            "prefetch_pending": pending,
            "prefetch_staleness": self.staleness,
        }

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _run(self) -> None:
        with use_device(self._device), use_tracer(self._tracer):
            while True:
                with self._cv:
                    while not self._pending and not self._stopping:
                        self._cv.wait()
                    if self._stopping:
                        return
                    ts = self._pending.popleft()
                    self._queued.discard(ts)
                self._build_one(ts)

    def _build_one(self, ts: int) -> None:
        if self._cached_key(ts) is not None:
            return
        cache = self._cache
        cache.mark_inflight(ts)
        try:
            device = current_device()
            start = time.perf_counter()
            with current_tracer().span("prefetch.snapshot", "prefetch", t=int(ts)):
                with device.profiler.phase("prefetch"):
                    key, snap = self.builder.build(ts)
                    cache.stage(key, snap)
            if device.metrics.enabled:
                device.metrics.observe(
                    "repro_prefetch_build_seconds", time.perf_counter() - start,
                    "Worker-side staged snapshot build latency.",
                )
        except BaseException as exc:  # keep the loop alive; graph degrades
            # First error wins, recorded under the condvar: the training
            # thread reads `worker_error` to decide whether to degrade, and
            # an unguarded write from here would race that read.
            with self._cv:
                if self.worker_error is None:
                    self.worker_error = exc
        finally:
            cache.clear_inflight(ts)
