"""Run time, separated: execution engines that launch compiled plans.

The compile-time half (:mod:`repro.compiler.plan`) produces an immutable
:class:`~repro.compiler.plan.ProgramPlan`; an :class:`ExecutionEngine` is
the run-time policy that executes one against a
:class:`~repro.compiler.runtime.GraphContext`.  Two implementations ship:

* :class:`KernelEngine` — launches the plan's generated kernels through the
  device's :class:`~repro.device.kernel.KernelLauncher` (fused single-launch
  or per-op launches for the fusion ablation), recording the
  feature-adaptive launch configuration exactly as before.
* :class:`InterpreterEngine` — executes the plan's tensor IR directly via
  :mod:`repro.compiler.interp`, with no codegen and no kernel cache.  Same
  runtime primitives, same op order, so its outputs are *bitwise* identical
  to the kernel engine's — which makes engine selection per plan the
  differential-testing switch: run any model under ``engine="interpreter"``
  and compare.

Engines are stateless and registered through the same Factory pattern as
deep-learning backends (:mod:`repro.core.backend`): ``get_engine("kernel")``.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping

import numpy as np

from repro.compiler.interp import trace_execution
from repro.compiler.plan import ProgramPlan
from repro.compiler.tir import IMPLICIT_ONES
from repro.compiler.runtime import GraphContext
from repro.device import current_device, feature_adaptive_config

__all__ = [
    "ExecutionEngine",
    "KernelEngine",
    "InterpreterEngine",
    "register_engine",
    "get_engine",
    "available_engines",
]


class ExecutionEngine(abc.ABC):
    """Run-time policy for executing a compiled :class:`ProgramPlan`.

    Engines are stateless: all compilation artifacts live on the plan, all
    per-snapshot structure on the context, and all per-call data in ``env``.
    ``env`` maps the plan's input *buffer* names to bound arrays (the
    feature-name → buffer binding is the caller's job, see
    :meth:`VertexProgram.forward <repro.compiler.program.VertexProgram>`).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def forward(
        self, plan: ProgramPlan, ctx: GraphContext, env: Mapping[str, np.ndarray]
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Execute the forward program; returns ``(out, saved_env)``."""

    @abc.abstractmethod
    def backward(
        self,
        plan: ProgramPlan,
        ctx: GraphContext,
        g_out: np.ndarray,
        saved: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Execute the backward program; returns gradients keyed by input buffer."""


def _launch_config(ctx: GraphContext, env: Mapping[str, np.ndarray]):
    """Feature-adaptive launch shape (Seastar's heuristic), recorded on the
    kernel for inspection; the simulated device executes the same math
    regardless, but the configuration model is preserved."""
    feature_size = 1
    for arr in env.values():
        if getattr(arr, "ndim", 0) == 2:
            feature_size = max(feature_size, arr.shape[1])
    return feature_adaptive_config(max(1, ctx.num_nodes), feature_size)


class KernelEngine(ExecutionEngine):
    """Launches the plan's generated kernels through the device launcher."""

    name = "kernel"

    def forward(self, plan, ctx, env):
        """Launch the fused forward kernel (or each op kernel in order)."""
        device = current_device()
        if plan.fused:
            plan.fwd_kernel.meta["launch_config"] = _launch_config(ctx, env)
            return device.launcher.launch(plan.fwd_kernel, ctx, env)
        env = dict(env)
        for op, kernel in plan.fwd_op_kernels:
            args = [env[n] for n in op.ins if n != IMPLICIT_ONES]
            env[op.out] = device.launcher.launch(kernel, ctx, *args)
        for buf, value in plan.fwd_prog.consts.items():
            env.setdefault(buf, value)
        out = env[plan.fwd_prog.outputs[0]]
        saved = {name: env[name] for name in plan.saved_spec}
        return out, saved

    def backward(self, plan, ctx, g_out, saved):
        """Launch the fused backward kernel (or each op kernel in order)."""
        device = current_device()
        if plan.fused:
            return device.launcher.launch(plan.bwd_kernel, ctx, g_out, saved)
        env: dict[str, np.ndarray] = {"g_out": g_out}
        for name, (kind, _) in plan.bwd_prog.inputs.items():
            if kind == "saved":
                env[name] = saved[name]
        for buf, value in plan.bwd_prog.consts.items():
            env[buf] = value
        for op, kernel in plan.bwd_op_kernels:
            args = [env[n] for n in op.ins if n != IMPLICIT_ONES]
            env[op.out] = device.launcher.launch(kernel, ctx, *args)
        return {inp: env[g] for inp, g in plan.grad_map.items()}


class InterpreterEngine(ExecutionEngine):
    """Executes the plan's tensor IR directly — the differential-test oracle.

    No codegen, no ``exec``, no kernel launches; op-by-op evaluation against
    the same runtime primitives the generated kernels call, so any
    disagreement with :class:`KernelEngine` is by construction a codegen bug.
    """

    name = "interpreter"

    def forward(self, plan, ctx, env):
        """Interpret the forward tensor program op by op."""
        full = trace_execution(plan.fwd_prog, ctx, env)
        out = full[plan.fwd_prog.outputs[0]]
        saved = {name: full[name] for name in plan.saved_spec}
        return out, saved

    def backward(self, plan, ctx, g_out, saved):
        """Interpret the backward tensor program op by op."""
        bindings: dict[str, np.ndarray] = {}
        for buf, (kind, _) in plan.bwd_prog.inputs.items():
            if kind == "saved":
                bindings[buf] = saved[buf]
            elif kind == "grad":
                bindings[buf] = g_out
        env = trace_execution(plan.bwd_prog, ctx, bindings)
        return {inp: env[g] for inp, g in plan.grad_map.items()}


_REGISTRY: dict[str, Callable[[], ExecutionEngine]] = {}
_INSTANCES: dict[str, ExecutionEngine] = {}


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register an engine factory under ``name`` (Factory pattern)."""
    if name in _REGISTRY:
        raise ValueError(f"engine {name!r} already registered")
    _REGISTRY[name] = factory


def get_engine(name: str | ExecutionEngine = "kernel") -> ExecutionEngine:
    """Instantiate (once) and return the named engine; instances pass through."""
    if isinstance(name, ExecutionEngine):
        return name
    if name not in _INSTANCES:
        if name not in _REGISTRY:
            raise KeyError(f"unknown engine {name!r}; available: {sorted(_REGISTRY)}")
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def available_engines() -> list[str]:
    """Names of all registered engines."""
    return sorted(_REGISTRY)


register_engine("kernel", KernelEngine)
register_engine("interpreter", InterpreterEngine)
