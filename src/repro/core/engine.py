"""Run time, separated: execution engines that launch compiled plans.

The compile-time half (:mod:`repro.compiler.plan`) produces an immutable
:class:`~repro.compiler.plan.ProgramPlan`; an :class:`ExecutionEngine` is
the run-time policy that executes one against a
:class:`~repro.compiler.runtime.GraphContext`.  Three implementations ship:

* :class:`KernelEngine` — launches the plan's generated kernels through the
  device's :class:`~repro.device.kernel.KernelLauncher` (fused single-launch
  or per-op launches for the fusion ablation), recording the
  feature-adaptive launch configuration exactly as before.
* :class:`InterpreterEngine` — executes the plan's tensor IR directly via
  :mod:`repro.compiler.interp`, with no codegen and no kernel cache.  Same
  runtime primitives, same op order, so its outputs are *bitwise* identical
  to the kernel engine's — which makes engine selection per plan the
  differential-testing switch: run any model under ``engine="interpreter"``
  and compare.
* :class:`CompiledEngine` — the machine-code tier: per-plan drivers routing
  CSR aggregation through the native kernels of
  :mod:`repro.compiler.native` (numba- or cc/cffi-compiled, see
  ``docs/COMPILER.md`` §10), compiled ahead of use at plan-build time and
  memoized process-wide by the plan content hash.  Bitwise-identical to the
  other two by construction; transparently delegates to
  :class:`KernelEngine` when no native toolchain exists.

Engines are stateless and registered through the same Factory pattern as
deep-learning backends (:mod:`repro.core.backend`): ``get_engine("kernel")``.
Re-registering the *same* factory under a taken name is an idempotent no-op
(re-imports and plugin-style registration must not explode); only a genuine
conflict — a different factory for a taken name — raises.
"""

from __future__ import annotations

import abc
import contextlib
from typing import Callable, Mapping

import numpy as np

from repro.analysis.sanitizer import new_lock
from repro.compiler.interp import trace_execution
from repro.compiler.plan import ProgramPlan
from repro.compiler.tir import IMPLICIT_ONES
from repro.compiler.runtime import GraphContext
from repro.device import current_device, feature_adaptive_config

__all__ = [
    "ExecutionEngine",
    "KernelEngine",
    "InterpreterEngine",
    "CompiledEngine",
    "register_engine",
    "get_engine",
    "available_engines",
]


class ExecutionEngine(abc.ABC):
    """Run-time policy for executing a compiled :class:`ProgramPlan`.

    Engines are stateless: all compilation artifacts live on the plan, all
    per-snapshot structure on the context, and all per-call data in ``env``.
    ``env`` maps the plan's input *buffer* names to bound arrays (the
    feature-name → buffer binding is the caller's job, see
    :meth:`VertexProgram.forward <repro.compiler.program.VertexProgram>`).
    """

    name: str = "abstract"

    @abc.abstractmethod
    def forward(
        self, plan: ProgramPlan, ctx: GraphContext, env: Mapping[str, np.ndarray]
    ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Execute the forward program; returns ``(out, saved_env)``."""

    @abc.abstractmethod
    def backward(
        self,
        plan: ProgramPlan,
        ctx: GraphContext,
        g_out: np.ndarray,
        saved: Mapping[str, np.ndarray],
    ) -> dict[str, np.ndarray]:
        """Execute the backward program; returns gradients keyed by input buffer."""


def _launch_config(ctx: GraphContext, env: Mapping[str, np.ndarray]):
    """Feature-adaptive launch shape (Seastar's heuristic), recorded on the
    kernel for inspection; the simulated device executes the same math
    regardless, but the configuration model is preserved."""
    feature_size = 1
    for arr in env.values():
        if getattr(arr, "ndim", 0) == 2:
            feature_size = max(feature_size, arr.shape[1])
    return feature_adaptive_config(max(1, ctx.num_nodes), feature_size)


class KernelEngine(ExecutionEngine):
    """Launches the plan's generated kernels through the device launcher."""

    name = "kernel"

    def forward(self, plan, ctx, env):
        """Launch the fused forward kernel (or each op kernel in order)."""
        device = current_device()
        if plan.fused:
            plan.fwd_kernel.meta["launch_config"] = _launch_config(ctx, env)
            return device.launcher.launch(plan.fwd_kernel, ctx, env)
        env = dict(env)
        for op, kernel in plan.fwd_op_kernels:
            args = [env[n] for n in op.ins if n != IMPLICIT_ONES]
            env[op.out] = device.launcher.launch(kernel, ctx, *args)
        for buf, value in plan.fwd_prog.consts.items():
            env.setdefault(buf, value)
        out = env[plan.fwd_prog.outputs[0]]
        saved = {name: env[name] for name in plan.saved_spec}
        return out, saved

    def backward(self, plan, ctx, g_out, saved):
        """Launch the fused backward kernel (or each op kernel in order)."""
        device = current_device()
        if plan.fused:
            return device.launcher.launch(plan.bwd_kernel, ctx, g_out, saved)
        env: dict[str, np.ndarray] = {"g_out": g_out}
        for name, (kind, _) in plan.bwd_prog.inputs.items():
            if kind == "saved":
                env[name] = saved[name]
        for buf, value in plan.bwd_prog.consts.items():
            env[buf] = value
        for op, kernel in plan.bwd_op_kernels:
            args = [env[n] for n in op.ins if n != IMPLICIT_ONES]
            env[op.out] = device.launcher.launch(kernel, ctx, *args)
        return {inp: env[g] for inp, g in plan.grad_map.items()}


class InterpreterEngine(ExecutionEngine):
    """Executes the plan's tensor IR directly — the differential-test oracle.

    No codegen, no ``exec``, no kernel launches; op-by-op evaluation against
    the same runtime primitives the generated kernels call, so any
    disagreement with :class:`KernelEngine` is by construction a codegen bug.
    """

    name = "interpreter"

    def forward(self, plan, ctx, env):
        """Interpret the forward tensor program op by op."""
        full = trace_execution(plan.fwd_prog, ctx, env)
        out = full[plan.fwd_prog.outputs[0]]
        saved = {name: full[name] for name in plan.saved_spec}
        return out, saved

    def backward(self, plan, ctx, g_out, saved):
        """Interpret the backward tensor program op by op."""
        bindings: dict[str, np.ndarray] = {}
        for buf, (kind, _) in plan.bwd_prog.inputs.items():
            if kind == "saved":
                bindings[buf] = saved[buf]
            elif kind == "grad":
                bindings[buf] = g_out
        env = trace_execution(plan.bwd_prog, ctx, bindings)
        return {inp: env[g] for inp, g in plan.grad_map.items()}


class CompiledEngine(ExecutionEngine):
    """The machine-code tier: native CSR kernels behind generated drivers.

    For each plan the engine generates a pair of *compiled drivers*
    (:func:`~repro.compiler.codegen.generate_compiled_forward_source` /
    ``..._backward_source``): the familiar fused driver shape, but with the
    CSR aggregation ops routed through the native ``nat_*`` primitives of
    :mod:`repro.compiler.native` and the structural arrays served by the
    cross-timestamp fusion cache (``native_graph``).  Drivers are memoized
    process-wide by the plan's content hash, compiled *at plan-build time*
    via the plan cache's build hook (late engine construction replays over
    already-cached plans), and always launched through the device's
    :class:`~repro.device.kernel.KernelLauncher` — so tracer spans, launch
    accounting, and fault injection see compiled launches exactly like
    kernel-engine launches.  Compilation cost lands in the profiler's
    ``"compile"`` phase (the fig9 ``compile_%`` column).

    The engine always emits its own fused driver pair, independent of the
    plan's ``fused`` flag: op order is identical either way, so outputs
    remain bitwise-equal to both sibling engines even for unfused plans.

    Without a native toolchain (no numba, no working cc — see
    :func:`~repro.compiler.native.native_backend`) every call transparently
    delegates to :class:`KernelEngine`; selecting ``engine="compiled"`` is
    then a documented no-op rather than an error.
    """

    name = "compiled"

    def __init__(self) -> None:
        from repro.compiler.native import native_backend

        self.backend = native_backend()  # "numba" | "c" | None
        self._drivers: dict[str, tuple] = {}
        self._lock = new_lock("CompiledEngine._lock")
        if self.backend is not None:
            from repro.compiler.plan import register_plan_build_hook

            register_plan_build_hook(self._precompile)

    # ------------------------------------------------------------------
    def _precompile(self, plan: ProgramPlan) -> None:
        """Plan-build hook: compile this plan's drivers ahead of first use."""
        self._drivers_for(plan)

    def _drivers_for(self, plan: ProgramPlan):
        pair = self._drivers.get(plan.plan_id)
        if pair is not None:
            return pair
        from repro.compiler.codegen import (
            compile_native_program,
            generate_compiled_backward_source,
            generate_compiled_forward_source,
        )

        with self._lock:
            pair = self._drivers.get(plan.plan_id)
            if pair is not None:
                return pair
            meta = {"tier": "native", "backend": self.backend}
            # When invoked as a plan-build hook this already runs inside the
            # PlanCache's "compile" phase — reuse it rather than stacking a
            # second interval (one plan build must count as one compile).
            profiler = current_device().profiler
            timed = (
                contextlib.nullcontext()
                if profiler.in_phase("compile")
                else profiler.phase("compile")
            )
            with timed:
                fwd_entry = f"{plan.plan_id}_cfwd"
                fwd_src = generate_compiled_forward_source(
                    plan.fwd_prog, list(plan.saved_spec), fwd_entry
                )
                fwd = compile_native_program(fwd_src, fwd_entry, meta=dict(meta))
                bwd_entry = f"{plan.plan_id}_cbwd"
                bwd_src = generate_compiled_backward_source(
                    plan.bwd_prog, dict(plan.grad_map), bwd_entry
                )
                bwd = compile_native_program(bwd_src, bwd_entry, meta=dict(meta))
            pair = (fwd, bwd)
            self._drivers[plan.plan_id] = pair
            return pair

    # ------------------------------------------------------------------
    def forward(self, plan, ctx, env):
        """Launch the compiled forward driver (kernel engine without a toolchain)."""
        if self.backend is None:
            return get_engine("kernel").forward(plan, ctx, env)
        fwd, _ = self._drivers_for(plan)
        fwd.meta["launch_config"] = _launch_config(ctx, env)
        return current_device().launcher.launch(fwd, ctx, env)

    def backward(self, plan, ctx, g_out, saved):
        """Launch the compiled backward driver (kernel engine without a toolchain)."""
        if self.backend is None:
            return get_engine("kernel").backward(plan, ctx, g_out, saved)
        _, bwd = self._drivers_for(plan)
        return current_device().launcher.launch(bwd, ctx, g_out, saved)


_REGISTRY: dict[str, Callable[[], ExecutionEngine]] = {}
_INSTANCES: dict[str, ExecutionEngine] = {}


def _same_factory(a: Callable, b: Callable) -> bool:
    """Whether two factories are the same definition (identity, or the same
    module+qualname — what a re-import of the defining module produces)."""
    if a is b:
        return True
    return (
        getattr(a, "__module__", None) is not None
        and getattr(a, "__module__", None) == getattr(b, "__module__", None)
        and getattr(a, "__qualname__", None) == getattr(b, "__qualname__", None)
    )


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register an engine factory under ``name`` (Factory pattern).

    Idempotent for identical re-registration: registering the same factory
    (or a re-imported copy of the same definition) under a name it already
    holds is a no-op, so module re-imports under pytest and plugin-style
    registration hooks are safe.  Only a *genuine* conflict — a different
    factory claiming a taken name — raises ``ValueError``.
    """
    existing = _REGISTRY.get(name)
    if existing is not None:
        if _same_factory(existing, factory):
            return
        raise ValueError(
            f"engine {name!r} already registered with a different factory "
            f"({existing!r}); refusing to replace it with {factory!r}"
        )
    _REGISTRY[name] = factory


def get_engine(name: str | ExecutionEngine = "kernel") -> ExecutionEngine:
    """Instantiate (once) and return the named engine; instances pass through.

    Unknown names raise a ``KeyError`` that lists :func:`available_engines`,
    so a typo like ``--engine copiled`` tells the user what *is* available
    (the CLI turns this into a clean non-zero exit, not a traceback).
    """
    if isinstance(name, ExecutionEngine):
        return name
    if name not in _INSTANCES:
        if name not in _REGISTRY:
            raise KeyError(
                f"unknown engine {name!r}; available engines: "
                f"{', '.join(available_engines())}"
            )
        _INSTANCES[name] = _REGISTRY[name]()
    return _INSTANCES[name]


def available_engines() -> list[str]:
    """Names of all registered engines."""
    return sorted(_REGISTRY)


register_engine("kernel", KernelEngine)
register_engine("interpreter", InterpreterEngine)
register_engine("compiled", CompiledEngine)
