"""The Temporally-aware Executor (paper Figure 1/2, Algorithm 1).

The executor sits between the model and the graph object:

* **forward** (``begin_timestamp``) — positions the graph at ``t`` via
  ``Get-Graph`` (Algorithm 2 for GPMA), pushes ``t`` onto the Graph Stack
  for dynamic graphs, and prepares the :class:`GraphContext` kernels run
  against; each aggregation then pushes its pruned saved-state onto the
  State Stack.
* **backward** — driven by the tensor engine's reverse sweep: the first
  gradient arriving for timestamp ``t`` pops the Graph Stack, repositions
  the graph via ``Get-Backward-Graph`` and rebuilds the context; each
  aggregation pops its own State Stack entry.

**Context reuse.**  Preparing a :class:`GraphContext` (CSR views, label
permutations) is structural work billed to ``graph_update``, and a training
sequence visits every snapshot twice — forward, then again on the LIFO
backward walk.  Contexts are therefore kept in a small LRU keyed by the
graph's ``snapshot_key()`` (its snapshot-version content identity): a
backward step whose key matches the forward pass's build reuses that
context outright instead of blindly rebuilding, and a no-op update batch
(which leaves the version untouched) even reuses the previous timestamp's
context.  See ``docs/EXECUTOR.md`` for the lifecycle rules.

GNN processing time (kernel launches) is attributed to the ``"gnn"``
profiler phase; everything the graph object does is attributed to
``"graph_update"`` inside the graph implementations, giving Figure 9 its
two-way split.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.compiler.runtime import GraphContext
from repro.core.engine import ExecutionEngine, get_engine
from repro.core.stacks import GraphStack, StateStack
from repro.device import current_device
from repro.graph.base import STGraphBase
from repro.obs.flight import current_flight_recorder
from repro.obs.tracer import current_tracer

__all__ = ["TemporalExecutor"]


class TemporalExecutor:
    """Orchestrates snapshots and saved state across a training sequence.

    The executor owns no compilation state: layers hold immutable
    :class:`~repro.compiler.plan.ProgramPlan` references from the process-wide
    plan cache, and the executor only supplies run-time structure (contexts,
    stacks).  Passing ``engine`` overrides every aggregation's execution
    engine for this executor — e.g. ``engine="interpreter"`` runs a whole
    model on the tensor-IR interpreter for differential testing; ``None``
    (default) lets each program use its own engine.
    """

    def __init__(
        self,
        graph: STGraphBase,
        engine: str | ExecutionEngine | None = None,
        ctx_cache_size: int = 4,
        pipeline: int = 0,
    ) -> None:
        self.graph = graph
        self.engine: ExecutionEngine | None = (
            None if engine is None else get_engine(engine)
        )
        # Pipelined execution (docs/EXECUTOR.md §Pipelined execution):
        # pipeline = bounded staleness k.  0 = strictly serial (no worker
        # thread is ever created, bitwise-identical to pre-pipeline runs);
        # k >= 1 lets a PrefetchScheduler build up to k future snapshots on
        # a worker thread while this thread computes the current one.
        self.pipeline = int(pipeline)
        self._prefetcher = None
        self.state_stack = StateStack()
        self.graph_stack = GraphStack()
        self._fwd_ctx: GraphContext | None = None
        self._fwd_t: int | None = None
        self._bwd_ctx: GraphContext | None = None
        self._bwd_t: int | None = None
        self._static_ctx: GraphContext | None = None
        # snapshot_key() -> GraphContext LRU; disabled when the graph opts
        # out of snapshot reuse (the enable_csr_cache ablation flag).
        self.ctx_cache_size = int(ctx_cache_size)
        self._ctx_cache: OrderedDict[tuple, GraphContext] = OrderedDict()
        self.ctx_cache_hits = 0
        self.ctx_cache_misses = 0
        # Degradation-ladder accounting (repro.core.module increments these):
        # kernel launches retried after an injected fault, and aggregations
        # that fell back to the interpreter engine.
        self.kernel_retries = 0
        self.engine_fallbacks = 0
        self.sequence_aborts = 0

    @property
    def _ctx_cache_enabled(self) -> bool:
        return self.ctx_cache_size > 0 and getattr(self.graph, "enable_csr_cache", True)

    # ------------------------------------------------------------------
    # Pipelined execution
    # ------------------------------------------------------------------
    def set_pipeline(self, staleness: int) -> None:
        """Change the staleness bound; tears down a live scheduler on change."""
        staleness = int(staleness)
        if staleness == self.pipeline:
            return
        if self._prefetcher is not None:
            self._prefetcher.stop()
            self._prefetcher = None
        self.pipeline = staleness

    @property
    def prefetcher(self):
        """The live :class:`~repro.core.prefetch.PrefetchScheduler` (or None)."""
        return self._prefetcher

    def _maybe_prefetch(self, t: int) -> None:
        """Queue builds for the next ``pipeline`` timestamps, if eligible.

        Prefetch engages only for dynamic graphs that expose a
        side-effect-free builder (``snapshot_builder``) *and* have their
        snapshot cache enabled — the cache is the worker→consumer handoff
        point, so without it staged builds would have nowhere to land.
        """
        if self.pipeline <= 0:
            return
        graph = self.graph
        if not getattr(graph, "enable_csr_cache", False):
            return
        if getattr(graph, "snapshot_builder", None) is None:
            return
        if self._prefetcher is None:
            from repro.core.prefetch import PrefetchScheduler

            self._prefetcher = PrefetchScheduler(graph, staleness=self.pipeline)
        self._prefetcher.schedule_ahead(t)

    def _context_for_current(self) -> GraphContext:
        """Context for the graph's current snapshot, via the keyed LRU.

        The key is the graph's snapshot-version content identity, so the
        backward walk reuses the forward pass's context and no-op update
        batches reuse the previous timestamp's — replacing the old blind
        ``_bwd_ctx`` invalidation on every ``begin_timestamp``.
        """
        profiler = current_device().profiler
        if self._ctx_cache_enabled:
            key = self.graph.snapshot_key()
            ctx = self._ctx_cache.get(key)
            if ctx is not None:
                self._ctx_cache.move_to_end(key)
                self.ctx_cache_hits += 1
                profiler.count("ctx_cache_hits")
                return ctx
        # Context preparation (CSR views, label permutations) is structural
        # work — part of the snapshot cost Figure 9 bills to graph updates.
        with profiler.phase("graph_update"):
            ctx = GraphContext(self.graph)
        if self._ctx_cache_enabled:
            self.ctx_cache_misses += 1
            profiler.count("ctx_cache_misses")
            self._ctx_cache[ctx.snapshot_key] = ctx
            while len(self._ctx_cache) > self.ctx_cache_size:
                self._ctx_cache.popitem(last=False)
        return ctx

    # ------------------------------------------------------------------
    # Forward side
    # ------------------------------------------------------------------
    def begin_timestamp(self, t: int) -> GraphContext:
        """Get-Graph(G, t) + Graph Stack push; returns the kernel context."""
        t = int(t)
        if not self.graph.is_dynamic:
            if self._static_ctx is None:
                self.graph.get_graph(t)
                self._static_ctx = GraphContext(self.graph)
            self._fwd_t = t
            self._fwd_ctx = self._static_ctx
            return self._fwd_ctx
        with current_tracer().span("graph_update", "graph_update", t=t, dir="fwd"):
            self.graph.get_graph(t)
            self.graph_stack.push(t)
            self._fwd_t = t
            self._fwd_ctx = self._context_for_current()
        # With pipelining on, hand the next k snapshots to the prefetch
        # worker *after* positioning: they build while this timestamp's GNN
        # computes.
        self._maybe_prefetch(t)
        # A fresh forward ends any in-flight backward positioning; the
        # contexts themselves stay reusable through the keyed cache.
        self._bwd_ctx = None
        self._bwd_t = None
        return self._fwd_ctx

    def begin_inference(self, t: int) -> GraphContext:
        """Position for a read-only (serving) forward at timestamp ``t``.

        Like :meth:`begin_timestamp` but with **no Graph-Stack push** and no
        prefetch scheduling: a serving forward runs under ``no_grad()``, so
        no backward pass will ever pop the stack, and leaving entries behind
        would trip :meth:`check_drained`.  Positioning still goes through
        ``Get-Graph`` and the keyed context LRU, so repeated inference at an
        unchanged snapshot version reuses the cached CSR artifacts and
        context with zero Algorithm-3 rebuilds — the read-mostly fast path
        ``repro.serve`` batches queries onto (docs/SERVING.md).
        """
        t = int(t)
        if not self.graph.is_dynamic:
            if self._static_ctx is None:
                self.graph.get_graph(t)
                self._static_ctx = GraphContext(self.graph)
            self._fwd_t = t
            self._fwd_ctx = self._static_ctx
            return self._fwd_ctx
        with current_tracer().span("graph_update", "graph_update", t=t, dir="infer"):
            self.graph.get_graph(t)
            self._fwd_t = t
            self._fwd_ctx = self._context_for_current()
        return self._fwd_ctx

    def current_context(self) -> GraphContext:
        """The context prepared by the last ``begin_timestamp``."""
        if self._fwd_ctx is None:
            raise RuntimeError(
                "no active forward context: begin_timestamp() was never "
                "called (or the executor was reset)"
            )
        return self._fwd_ctx

    @property
    def current_timestamp(self) -> int | None:
        """The timestamp of the current forward position."""
        return self._fwd_t

    def end_sequence_forward(self) -> None:
        """Hook at the end of a sequence's forward pass: lets GPMA cache the
        snapshot so the next sequence starts with one update batch
        (Algorithm 2 lines 1-5/10)."""
        cache = getattr(self.graph, "cache_snapshot", None)
        if cache is not None:
            cache()

    # ------------------------------------------------------------------
    # Saved state
    # ------------------------------------------------------------------
    def push_state(self, saved: dict[str, np.ndarray], tag: str = "") -> int:
        """Push one aggregation's pruned saved state for the current timestamp."""
        assert self._fwd_t is not None, "push_state outside a timestamp"
        token = self.state_stack.push(self._fwd_t, saved, tag)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "state_stack.push", "stack",
                tag=tag, t=self._fwd_t,
                bytes=self.state_stack.last_push_bytes,
                total_bytes=self.state_stack.current_bytes(),
                depth=len(self.state_stack),
            )
        return token

    def pop_state(self, token: int) -> dict[str, np.ndarray]:
        """Pop a saved-state entry by its token (LIFO-checked)."""
        saved = self.state_stack.pop(token)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "state_stack.pop", "stack",
                bytes=self.state_stack.last_pop_bytes,
                total_bytes=self.state_stack.current_bytes(),
                depth=len(self.state_stack),
            )
        return saved

    # ------------------------------------------------------------------
    # Backward side
    # ------------------------------------------------------------------
    def backward_context(self, t: int) -> GraphContext:
        """Context for a backward step at timestamp ``t``.

        For dynamic graphs the first request for ``t`` pops the Graph Stack
        (which must yield exactly ``t`` — LIFO) and calls
        ``Get-Backward-Graph``; subsequent aggregations of the same
        timestamp reuse the rebuilt context.
        """
        t = int(t)
        if not self.graph.is_dynamic:
            assert self._static_ctx is not None
            return self._static_ctx
        if self._bwd_t == t and self._bwd_ctx is not None:
            return self._bwd_ctx
        with current_tracer().span("graph_update", "graph_update", t=t, dir="bwd"):
            popped = self.graph_stack.pop()
            if popped != t:
                raise RuntimeError(
                    f"graph stack LIFO violation: popped timestamp {popped}, "
                    f"backward requested {t}"
                )
            self.graph.get_backward_graph(t)
            self._bwd_ctx = self._context_for_current()
            self._bwd_t = t
        return self._bwd_ctx

    # ------------------------------------------------------------------
    def set_engine(self, engine: str | ExecutionEngine | None) -> None:
        """Change (or clear, with ``None``) the executor-wide engine override."""
        self.engine = None if engine is None else get_engine(engine)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear stacks and positioning (between epochs / after an aborted
        sequence).

        Both the forward and backward context pointers are dropped — a
        surviving ``_fwd_ctx`` would let ``current_context()`` silently
        return a context positioned at a dead timestamp from the aborted
        sequence.  The keyed context cache is content-addressed, so it stays
        valid and is kept.

        Pending prefetch work is cancelled (the walk is about to jump), but
        the worker thread stays up: already-staged snapshots remain valid —
        the cache is content-addressed — and the next sequence re-schedules.
        """
        self.state_stack.clear()
        self.graph_stack.clear()
        self._fwd_ctx = None
        self._fwd_t = None
        self._bwd_ctx = None
        self._bwd_t = None
        if self._prefetcher is not None:
            self._prefetcher.cancel_pending()

    def abort_sequence(self) -> None:
        """Exception-safe unwinding after a mid-sequence failure.

        A fault escaping the sequence body (allocator OOM, a kernel fault
        that exhausted the degradation ladder, a simulated kill) leaves
        partially pushed State/Graph Stacks and a context positioned at a
        dead timestamp.  This drains both stacks and drops the positioning
        so :meth:`check_drained` passes and the next sequence starts clean;
        the content-addressed caches (context LRU here, CSR LRU on the
        graph) stay valid and are kept.

        The prefetch worker, if any, is **fully stopped** (queue drained,
        thread joined) — after a fault the process may be about to
        checkpoint-exit or rewrite the version map on resume, and no build
        may straddle that.  Pipelining restarts lazily on the next
        ``begin_timestamp``.
        """
        dropped_state = len(self.state_stack)
        dropped_graph = len(self.graph_stack)
        if self._prefetcher is not None:
            self._prefetcher.stop()
        self.reset()
        self.sequence_aborts += 1
        current_device().profiler.count("sequence_aborts")
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "executor.abort_sequence", "fault",
                dropped_state=dropped_state, dropped_graph=dropped_graph,
            )
        recorder = current_flight_recorder()
        if recorder.enabled:
            # A mid-sequence teardown is exactly the incident window the
            # flight recorder exists for: dump the last-N-events ring.
            recorder.record(
                "span", "executor.abort_sequence",
                dropped_state=dropped_state, dropped_graph=dropped_graph,
            )
            recorder.drain("abort_sequence")

    def check_drained(self) -> None:
        """Assert both stacks emptied — i.e. forward/backward were balanced."""
        if not self.state_stack.is_empty:
            raise RuntimeError(f"state stack not drained: {len(self.state_stack)} entries left")
        if not self.graph_stack.is_empty:
            raise RuntimeError(f"graph stack not drained: {len(self.graph_stack)} entries left")

    def shutdown(self) -> None:
        """Stop the prefetch worker (if any) and drop its scheduler.

        Idempotent; the trainer calls this at the end of every ``train()``
        so a pipelined run never leaves a worker thread behind.
        """
        if self._prefetcher is not None:
            self._prefetcher.stop()
            self._prefetcher = None

    def stats(self) -> dict[str, int | str]:
        """Peak stack depths/bytes, push counts, engine override, and
        context/prefetch counters."""
        stats: dict[str, int | str] = {
            "engine": self.engine.name if self.engine is not None else "default",
            "state_stack_peak_depth": self.state_stack.peak_depth,
            "state_stack_peak_bytes": self.state_stack.peak_bytes,
            "state_stack_pushes": self.state_stack.total_pushes,
            "graph_stack_peak_depth": self.graph_stack.peak_depth,
            "ctx_cache_hits": self.ctx_cache_hits,
            "ctx_cache_misses": self.ctx_cache_misses,
            "kernel_retries": self.kernel_retries,
            "engine_fallbacks": self.engine_fallbacks,
            "sequence_aborts": self.sequence_aborts,
            "pipeline": self.pipeline,
            "prefetch_hits": getattr(self.graph, "prefetch_hits", 0),
            "prefetch_misses": getattr(self.graph, "prefetch_misses", 0),
        }
        if self._prefetcher is not None:
            stats.update(self._prefetcher.stats())
        return stats
