"""The Temporally-aware Executor (paper Figure 1/2, Algorithm 1).

The executor sits between the model and the graph object:

* **forward** (``begin_timestamp``) — positions the graph at ``t`` via
  ``Get-Graph`` (Algorithm 2 for GPMA), pushes ``t`` onto the Graph Stack
  for dynamic graphs, and prepares the :class:`GraphContext` kernels run
  against; each aggregation then pushes its pruned saved-state onto the
  State Stack.
* **backward** — driven by the tensor engine's reverse sweep: the first
  gradient arriving for timestamp ``t`` pops the Graph Stack, repositions
  the graph via ``Get-Backward-Graph`` and rebuilds the context; each
  aggregation pops its own State Stack entry.

GNN processing time (kernel launches) is attributed to the ``"gnn"``
profiler phase; everything the graph object does is attributed to
``"graph_update"`` inside the graph implementations, giving Figure 9 its
two-way split.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.runtime import GraphContext
from repro.core.engine import ExecutionEngine, get_engine
from repro.core.stacks import GraphStack, StateStack
from repro.device import current_device
from repro.graph.base import STGraphBase

__all__ = ["TemporalExecutor"]


class TemporalExecutor:
    """Orchestrates snapshots and saved state across a training sequence.

    The executor owns no compilation state: layers hold immutable
    :class:`~repro.compiler.plan.ProgramPlan` references from the process-wide
    plan cache, and the executor only supplies run-time structure (contexts,
    stacks).  Passing ``engine`` overrides every aggregation's execution
    engine for this executor — e.g. ``engine="interpreter"`` runs a whole
    model on the tensor-IR interpreter for differential testing; ``None``
    (default) lets each program use its own engine.
    """

    def __init__(self, graph: STGraphBase, engine: str | ExecutionEngine | None = None) -> None:
        self.graph = graph
        self.engine: ExecutionEngine | None = (
            None if engine is None else get_engine(engine)
        )
        self.state_stack = StateStack()
        self.graph_stack = GraphStack()
        self._fwd_ctx: GraphContext | None = None
        self._fwd_t: int | None = None
        self._bwd_ctx: GraphContext | None = None
        self._bwd_t: int | None = None
        self._static_ctx: GraphContext | None = None

    # ------------------------------------------------------------------
    # Forward side
    # ------------------------------------------------------------------
    def begin_timestamp(self, t: int) -> GraphContext:
        """Get-Graph(G, t) + Graph Stack push; returns the kernel context."""
        t = int(t)
        if not self.graph.is_dynamic:
            if self._static_ctx is None:
                self.graph.get_graph(t)
                self._static_ctx = GraphContext(self.graph)
            self._fwd_t = t
            self._fwd_ctx = self._static_ctx
            return self._fwd_ctx
        self.graph.get_graph(t)
        self.graph_stack.push(t)
        self._fwd_t = t
        # Context preparation (CSR views, label permutations) is structural
        # work — part of the snapshot cost Figure 9 bills to graph updates.
        with current_device().profiler.phase("graph_update"):
            self._fwd_ctx = GraphContext(self.graph)
        # A fresh forward invalidates any stale backward context.
        self._bwd_ctx = None
        self._bwd_t = None
        return self._fwd_ctx

    def current_context(self) -> GraphContext:
        """The context prepared by the last ``begin_timestamp``."""
        if self._fwd_ctx is None:
            raise RuntimeError("begin_timestamp() was never called")
        return self._fwd_ctx

    @property
    def current_timestamp(self) -> int | None:
        """The timestamp of the current forward position."""
        return self._fwd_t

    def end_sequence_forward(self) -> None:
        """Hook at the end of a sequence's forward pass: lets GPMA cache the
        snapshot so the next sequence starts with one update batch
        (Algorithm 2 lines 1-5/10)."""
        cache = getattr(self.graph, "cache_snapshot", None)
        if cache is not None:
            cache()

    # ------------------------------------------------------------------
    # Saved state
    # ------------------------------------------------------------------
    def push_state(self, saved: dict[str, np.ndarray], tag: str = "") -> int:
        """Push one aggregation's pruned saved state for the current timestamp."""
        assert self._fwd_t is not None, "push_state outside a timestamp"
        return self.state_stack.push(self._fwd_t, saved, tag)

    def pop_state(self, token: int) -> dict[str, np.ndarray]:
        """Pop a saved-state entry by its token (LIFO-checked)."""
        return self.state_stack.pop(token)

    # ------------------------------------------------------------------
    # Backward side
    # ------------------------------------------------------------------
    def backward_context(self, t: int) -> GraphContext:
        """Context for a backward step at timestamp ``t``.

        For dynamic graphs the first request for ``t`` pops the Graph Stack
        (which must yield exactly ``t`` — LIFO) and calls
        ``Get-Backward-Graph``; subsequent aggregations of the same
        timestamp reuse the rebuilt context.
        """
        t = int(t)
        if not self.graph.is_dynamic:
            assert self._static_ctx is not None
            return self._static_ctx
        if self._bwd_t == t and self._bwd_ctx is not None:
            return self._bwd_ctx
        popped = self.graph_stack.pop()
        if popped != t:
            raise RuntimeError(
                f"graph stack LIFO violation: popped timestamp {popped}, "
                f"backward requested {t}"
            )
        self.graph.get_backward_graph(t)
        with current_device().profiler.phase("graph_update"):
            self._bwd_ctx = GraphContext(self.graph)
        self._bwd_t = t
        return self._bwd_ctx

    # ------------------------------------------------------------------
    def set_engine(self, engine: str | ExecutionEngine | None) -> None:
        """Change (or clear, with ``None``) the executor-wide engine override."""
        self.engine = None if engine is None else get_engine(engine)

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear stacks (between epochs / after an aborted sequence)."""
        self.state_stack.clear()
        self.graph_stack.clear()
        self._bwd_ctx = None
        self._bwd_t = None

    def check_drained(self) -> None:
        """Assert both stacks emptied — i.e. forward/backward were balanced."""
        if not self.state_stack.is_empty:
            raise RuntimeError(f"state stack not drained: {len(self.state_stack)} entries left")
        if not self.graph_stack.is_empty:
            raise RuntimeError(f"graph stack not drained: {len(self.graph_stack)} entries left")

    def stats(self) -> dict[str, int]:
        """Peak stack depths/bytes and push counts (diagnostics)."""
        return {
            "state_stack_peak_depth": self.state_stack.peak_depth,
            "state_stack_peak_bytes": self.state_stack.peak_bytes,
            "state_stack_pushes": self.state_stack.total_pushes,
            "graph_stack_peak_depth": self.graph_stack.peak_depth,
        }
