"""The STGraph core: temporally-aware execution (paper §V-A/B, Figure 2).

* :class:`StateStack` / :class:`GraphStack` — the LIFO memory structures
  that make the executor temporally aware (Algorithm 1).
* :class:`TemporalExecutor` — orchestrates which snapshot and which saved
  forward state each backward step sees.
* :class:`VertexCentricLayer` — base class wiring compiled vertex programs
  into the tensor engine's autodiff through the executor.
* backend interface — the factory-decoupled boundary that keeps the
  framework backend-agnostic (paper §VI-1).
* execution engines — the run-time half of the compile/run split: the
  generated-kernel engine and the tensor-IR interpreter behind one
  interface, selectable per program or per executor.
* :class:`PrefetchScheduler` — pipelined temporal execution: builds future
  snapshots on a worker thread under a bounded-staleness knob.
"""

from repro.core.stacks import GraphStack, StateStack, StackEntry
from repro.core.prefetch import PrefetchScheduler
from repro.core.engine import (
    CompiledEngine,
    ExecutionEngine,
    InterpreterEngine,
    KernelEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core.executor import TemporalExecutor
from repro.core.module import VertexCentricLayer
from repro.core.backend import BackendInterface, available_backends, get_backend, register_backend

__all__ = [
    "StateStack",
    "GraphStack",
    "StackEntry",
    "TemporalExecutor",
    "PrefetchScheduler",
    "VertexCentricLayer",
    "ExecutionEngine",
    "KernelEngine",
    "InterpreterEngine",
    "CompiledEngine",
    "get_engine",
    "register_engine",
    "available_engines",
    "BackendInterface",
    "get_backend",
    "register_backend",
    "available_backends",
]
