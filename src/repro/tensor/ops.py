"""Differentiable op implementations (:class:`Function` subclasses).

Each op follows the classic tape pattern: ``apply`` computes the forward
result and *saves whatever its backward needs* on the context instance.
Those saved arrays stay referenced — and therefore device-resident — until
``backward()`` consumes the node.  This retention is precisely the backend
behaviour the paper's State Stack optimization targets, so it is load-bearing
for the memory experiments, not an implementation accident.

Broadcasting ops reverse broadcasting in backward via :func:`_unbroadcast`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.tensor.tensor import Tensor, is_grad_enabled

__all__ = ["Function"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the target shape.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce(value: Any) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float32), _track=False)


class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (returning an ndarray) and
    :meth:`backward` (returning one grad ndarray — or ``None`` — per input).
    """

    def __init__(self) -> None:
        self.inputs: tuple[Tensor, ...] = ()
        self.saved: tuple[Any, ...] = ()

    def save_for_backward(self, *items: Any) -> None:
        """Stash values the backward pass will need (kept until consumed)."""
        self.saved = items

    # subclasses override -------------------------------------------------
    def forward(self, *arrays: np.ndarray, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> tuple[np.ndarray | None, ...] | np.ndarray | None:
        """Return one gradient (or None) per input, given the output gradient."""
        raise NotImplementedError

    # ---------------------------------------------------------------------
    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> Tensor:
        """Run the op on coerced inputs and record it on the tape if needed."""
        ctx = cls()
        tensors = tuple(_coerce(a) for a in args)
        out_data = ctx.forward(*(t.data for t in tensors), **kwargs)
        out = Tensor(out_data)
        if is_grad_enabled() and any(t.requires_grad or t._ctx is not None for t in tensors):
            ctx.inputs = tensors
            out._ctx = ctx
        return out


# ---------------------------------------------------------------------------
# Elementwise binary ops
# ---------------------------------------------------------------------------
class Add(Function):
    """Broadcasting elementwise sum."""
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._shapes = (a.shape, b.shape)
        return a + b

    def backward(self, grad: np.ndarray):
        sa, sb = self._shapes
        return _unbroadcast(grad, sa), _unbroadcast(grad, sb)


class Sub(Function):
    """Broadcasting elementwise difference."""
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self._shapes = (a.shape, b.shape)
        return a - b

    def backward(self, grad: np.ndarray):
        sa, sb = self._shapes
        return _unbroadcast(grad, sa), _unbroadcast(-grad, sb)


class Mul(Function):
    """Broadcasting elementwise product (saves both operands)."""
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        return _unbroadcast(grad * b, a.shape), _unbroadcast(grad * a, b.shape)


class Div(Function):
    """Broadcasting elementwise quotient."""
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        ga = _unbroadcast(grad / b, a.shape)
        gb = _unbroadcast(-grad * a / (b * b), b.shape)
        return ga, gb


class Maximum(Function):
    """Elementwise max; ties send the gradient to the first operand."""
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return np.maximum(a, b)

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        mask = (a >= b).astype(grad.dtype)
        return _unbroadcast(grad * mask, a.shape), _unbroadcast(grad * (1.0 - mask), b.shape)


# ---------------------------------------------------------------------------
# Elementwise unary ops
# ---------------------------------------------------------------------------
class Neg(Function):
    """Elementwise negation."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad: np.ndarray):
        return (-grad,)


class Pow(Function):
    """Power with a constant exponent."""
    def forward(self, a: np.ndarray, exponent: float = 2.0) -> np.ndarray:
        self.exponent = float(exponent)
        self.save_for_backward(a)
        return a**self.exponent

    def backward(self, grad: np.ndarray):
        (a,) = self.saved
        return (grad * self.exponent * a ** (self.exponent - 1.0),)


class Exp(Function):
    """Exponential (backward reuses the output)."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    """Natural logarithm."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad: np.ndarray):
        (a,) = self.saved
        return (grad / a,)


class Sqrt(Function):
    """Square root (backward reuses the output)."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray):
        (out,) = self.saved
        return (grad * 0.5 / out,)


class Sigmoid(Function):
    """Numerically stable logistic sigmoid."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        # Numerically stable split for positive/negative inputs.
        out = np.empty_like(a)
        pos = a >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
        ex = np.exp(a[~pos])
        out[~pos] = ex / (1.0 + ex)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class Tanh(Function):
    """Hyperbolic tangent (backward reuses the output)."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)


class ReLU(Function):
    """Rectified linear unit (saves the sign mask)."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad: np.ndarray):
        (mask,) = self.saved
        return (grad * mask,)


class LeakyReLU(Function):
    """Leaky ReLU with configurable negative slope."""
    def forward(self, a: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
        self.slope = float(negative_slope)
        mask = a > 0
        self.save_for_backward(mask)
        return np.where(mask, a, self.slope * a)

    def backward(self, grad: np.ndarray):
        (mask,) = self.saved
        return (np.where(mask, grad, self.slope * grad),)


class Clip(Function):
    """Clamp with zero gradient outside the bounds."""
    def forward(self, a: np.ndarray, lo: float = -1.0, hi: float = 1.0) -> np.ndarray:
        self.save_for_backward((a >= lo) & (a <= hi))
        return np.clip(a, lo, hi)

    def backward(self, grad: np.ndarray):
        (mask,) = self.saved
        return (grad * mask,)


class Dropout(Function):
    """Inverted dropout with a seedable mask."""
    def forward(self, a: np.ndarray, p: float = 0.5, seed: int | None = None) -> np.ndarray:
        rng = np.random.default_rng(seed)
        keep = 1.0 - p
        mask = (rng.random(a.shape) < keep).astype(a.dtype) / max(keep, 1e-12)
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad: np.ndarray):
        (mask,) = self.saved
        return (grad * mask,)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------
class MatMul(Function):
    """Dense matrix product."""
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad: np.ndarray):
        a, b = self.saved
        ga = grad @ b.T if b.ndim == 2 else np.outer(grad, b)
        gb = a.T @ grad if a.ndim == 2 else np.outer(a, grad)
        return ga.reshape(a.shape), gb.reshape(b.shape)


class Transpose(Function):
    """2-D transpose."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        return a.T

    def backward(self, grad: np.ndarray):
        return (grad.T,)


# ---------------------------------------------------------------------------
# Shape ops
# ---------------------------------------------------------------------------
class Reshape(Function):
    """Shape change; backward restores the original shape."""
    def forward(self, a: np.ndarray, shape: tuple[int, ...] = ()) -> np.ndarray:
        self._orig = a.shape
        return a.reshape(shape)

    def backward(self, grad: np.ndarray):
        return (grad.reshape(self._orig),)


class Concat(Function):
    """Concatenation along an axis; backward splits the grad."""
    def forward(self, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        self.axis = axis
        self._sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad: np.ndarray):
        splits = np.cumsum(self._sizes)[:-1]
        return tuple(np.ascontiguousarray(g) for g in np.split(grad, splits, axis=self.axis))


class Stack(Function):
    """Stack along a new axis."""
    def forward(self, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        self.axis = axis
        return np.stack(arrays, axis=axis)

    def backward(self, grad: np.ndarray):
        parts = np.split(grad, grad.shape[self.axis], axis=self.axis)
        return tuple(np.ascontiguousarray(p.squeeze(self.axis)) for p in parts)


class GetItem(Function):
    """Indexing/slicing; backward scatter-adds into the source shape."""
    def forward(self, a: np.ndarray, idx: Any = None) -> np.ndarray:
        self.idx = idx
        self._shape = a.shape
        out = a[idx]
        return np.ascontiguousarray(out)

    def backward(self, grad: np.ndarray):
        out = np.zeros(self._shape, dtype=grad.dtype)
        np.add.at(out, self.idx, grad)
        return (out,)


# ---------------------------------------------------------------------------
# Gather / scatter (the edge-parallel primitives the PyG-T baseline uses)
# ---------------------------------------------------------------------------
class IndexSelect(Function):
    """``out[e] = a[index[e]]`` — the per-edge feature *gather*.

    Forward materializes an ``E×F`` array; backward scatter-adds the grads
    back to the ``N×F`` source.  The ``E×F`` output is what the paper calls
    PyG's "duplication of node features".
    """

    def forward(self, a: np.ndarray, index: np.ndarray = None) -> np.ndarray:
        self.index = index
        self._n = a.shape[0]
        return np.ascontiguousarray(a[index])

    def backward(self, grad: np.ndarray):
        out = np.zeros((self._n,) + grad.shape[1:], dtype=grad.dtype)
        np.add.at(out, self.index, grad)
        return (out,)


class ScatterAdd(Function):
    """``out[index[e]] += a[e]`` over ``num_targets`` rows — the edge reduce."""

    def forward(self, a: np.ndarray, index: np.ndarray = None, num_targets: int = 0) -> np.ndarray:
        self.index = index
        out = np.zeros((num_targets,) + a.shape[1:], dtype=a.dtype)
        np.add.at(out, index, a)
        return out

    def backward(self, grad: np.ndarray):
        return (np.ascontiguousarray(grad[self.index]),)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------
class Sum(Function):
    """Reduction sum; backward broadcasts the grad."""
    def forward(self, a: np.ndarray, axis: int | None = None, keepdims: bool = False) -> np.ndarray:
        self._shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        out = a.sum(axis=axis, keepdims=keepdims)
        return np.asarray(out, dtype=a.dtype)

    def backward(self, grad: np.ndarray):
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (np.broadcast_to(grad, self._shape).copy(),)


class Mean(Function):
    """Reduction mean."""
    def forward(self, a: np.ndarray, axis: int | None = None, keepdims: bool = False) -> np.ndarray:
        self._shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        if axis is None:
            self._count = a.size
        else:
            self._count = a.shape[axis]
        out = a.mean(axis=axis, keepdims=keepdims)
        return np.asarray(out, dtype=a.dtype)

    def backward(self, grad: np.ndarray):
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (np.broadcast_to(grad, self._shape).copy() / self._count,)


class Max(Function):
    """Reduction max; ties share the gradient equally."""
    def forward(self, a: np.ndarray, axis: int | None = None, keepdims: bool = False) -> np.ndarray:
        self._shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        out = a.max(axis=axis, keepdims=keepdims)
        full = a.max(axis=axis, keepdims=True) if axis is not None else a.max()
        self.save_for_backward(a == full)
        return np.asarray(out, dtype=a.dtype)

    def backward(self, grad: np.ndarray):
        (mask,) = self.saved
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        counts = mask.sum(axis=self.axis, keepdims=True) if self.axis is not None else mask.sum()
        return (np.broadcast_to(grad, self._shape) * mask / counts,)


class Softmax(Function):
    """Softmax along an axis with the standard VJP."""
    def forward(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        self.axis = axis
        shifted = a - a.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)
        self.save_for_backward(out)
        return out

    def backward(self, grad: np.ndarray):
        (out,) = self.saved
        dot = (grad * out).sum(axis=self.axis, keepdims=True)
        return (out * (grad - dot),)


class Clone(Function):
    """Identity copy."""
    def forward(self, a: np.ndarray) -> np.ndarray:
        return a.copy()

    def backward(self, grad: np.ndarray):
        return (grad,)
