"""Neural-network modules: ``Module``/``Parameter`` and recurrent cells.

The paper composes TGNN models from a GNN layer (spatial) and an RNN variant
(temporal): "temporal models are built using GNN layers as building blocks".
The recurrent cells here (``GRUCell``, ``LSTMCell``) are the temporal halves;
the spatial halves live in :mod:`repro.nn` (vertex-centric) and
:mod:`repro.baselines.pygt` (edge-parallel).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.tensor import functional as F
from repro.tensor import init
from repro.tensor.tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Embedding",
    "GRUCell",
    "LSTMCell",
    "Sequential",
    "ModuleList",
]


class Parameter(Tensor):
    """A leaf tensor registered by :class:`Module`."""

    def __init__(self, data: np.ndarray | Tensor) -> None:
        if isinstance(data, Tensor):
            data = data.data
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True)


class Module:
    """Base class with parameter registration and traversal."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Parameter]:
        """All trainable parameters, depth-first."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """(dotted-path, parameter) pairs, depth-first."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        """This module and every registered submodule."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.grad = None

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict names/shapes)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {p.data.shape} vs {state[name].shape}")
            p.data[...] = state[name]

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.numel() for p in self.parameters())

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        return self.forward(*args, **kwargs)

    def forward(self, *args: object, **kwargs: object) -> Tensor:
        """Subclasses implement the computation; ``__call__`` delegates here."""
        raise NotImplementedError


class Linear(Module):
    """Affine map ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        """``x @ W (+ b)``."""
        out = F.matmul(x, self.weight)
        if self.bias is not None:
            out = F.add(out, self.bias)
        return out


class GRUCell(Module):
    """Gated recurrent unit cell over pre-aggregated inputs.

    TGCN uses this with the GCN output as the input: ``h' = GRU(gcn(x), h)``.
    """

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ir = Parameter(init.glorot_uniform((input_size, hidden_size)))
        self.w_hr = Parameter(init.glorot_uniform((hidden_size, hidden_size)))
        self.b_r = Parameter(init.zeros((hidden_size,)))
        self.w_iz = Parameter(init.glorot_uniform((input_size, hidden_size)))
        self.w_hz = Parameter(init.glorot_uniform((hidden_size, hidden_size)))
        self.b_z = Parameter(init.zeros((hidden_size,)))
        self.w_in = Parameter(init.glorot_uniform((input_size, hidden_size)))
        self.w_hn = Parameter(init.glorot_uniform((hidden_size, hidden_size)))
        self.b_n = Parameter(init.zeros((hidden_size,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """One GRU step: returns the next hidden state."""
        r = F.sigmoid(F.add(F.add(F.matmul(x, self.w_ir), F.matmul(h, self.w_hr)), self.b_r))
        z = F.sigmoid(F.add(F.add(F.matmul(x, self.w_iz), F.matmul(h, self.w_hz)), self.b_z))
        n = F.tanh(F.add(F.add(F.matmul(x, self.w_in), F.mul(r, F.matmul(h, self.w_hn))), self.b_n))
        one_minus_z = F.sub(1.0, z)
        return F.add(F.mul(one_minus_z, n), F.mul(z, h))


class LSTMCell(Module):
    """LSTM cell (for GConvLSTM-style temporal models)."""

    def __init__(self, input_size: int, hidden_size: int) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        for gate in ("i", "f", "g", "o"):
            setattr(self, f"w_x{gate}", Parameter(init.glorot_uniform((input_size, hidden_size))))
            setattr(self, f"w_h{gate}", Parameter(init.glorot_uniform((hidden_size, hidden_size))))
            setattr(self, f"b_{gate}", Parameter(init.zeros((hidden_size,))))

    def forward(self, x: Tensor, h: Tensor, c: Tensor) -> tuple[Tensor, Tensor]:
        """One LSTM step: returns ``(h_next, c_next)``."""
        i = F.sigmoid(F.add(F.add(F.matmul(x, self.w_xi), F.matmul(h, self.w_hi)), self.b_i))
        f = F.sigmoid(F.add(F.add(F.matmul(x, self.w_xf), F.matmul(h, self.w_hf)), self.b_f))
        g = F.tanh(F.add(F.add(F.matmul(x, self.w_xg), F.matmul(h, self.w_hg)), self.b_g))
        o = F.sigmoid(F.add(F.add(F.matmul(x, self.w_xo), F.matmul(h, self.w_ho)), self.b_o))
        c_next = F.add(F.mul(f, c), F.mul(i, g))
        h_next = F.mul(o, F.tanh(c_next))
        return h_next, c_next


class Embedding(Module):
    """Learnable lookup table (``num_embeddings × dim``).

    The standard way to give featureless DTDG vertices trainable inputs:
    ``emb(np.arange(N))`` yields per-node vectors whose gradients flow
    through ``IndexSelect``'s scatter-add backward.
    """

    def __init__(self, num_embeddings: int, dim: int, std: float = 0.1) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), std=std))

    def forward(self, indices: np.ndarray) -> Tensor:
        """Rows of the table at ``indices`` (gradients scatter-add back)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return F.index_select(self.weight, indices)

    def all(self) -> Tensor:
        """All embeddings in id order (for whole-graph lookups)."""
        return self.forward(np.arange(self.num_embeddings, dtype=np.int64))


class ModuleList(Module):
    """An indexable container whose items register as submodules."""
    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> None:
        """Add a module to the end of the list."""
        idx = len(self._items)
        self._items.append(module)
        self._modules[str(idx)] = module

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]


class Sequential(Module):
    """Feed-forward composition of modules."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = ModuleList(list(modules))

    def forward(self, x: Tensor) -> Tensor:
        """Apply each layer in order."""
        for layer in self.layers:
            x = layer(x)
        return x
