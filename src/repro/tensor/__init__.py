"""A reverse-mode autodiff tensor engine over NumPy.

This package is the reproduction's substitute for the PyTorch backend the
paper builds on.  It provides:

* :class:`Tensor` — an ndarray wrapper carrying a ``grad`` buffer and a
  pointer into the autodiff tape; ``backward()`` runs a topological reverse
  sweep.
* ``repro.tensor.functional`` — differentiable ops (elementwise, matmul,
  gather/scatter, reductions, activations) and the two loss criteria the
  paper benchmarks with (MSE, BCE-with-logits).
* ``repro.tensor.nn`` — ``Module``/``Parameter`` plus the building blocks
  TGNN models need (``Linear``, ``GRUCell``, ``LSTMCell``).
* ``repro.tensor.optim`` — SGD/Adam/RMSprop.

Crucially for the paper's memory experiments, the engine reproduces the
backend behaviour STGraph's State Stack optimizes against: every op *saves
the tensors its backward needs* and keeps them resident until ``backward()``
runs, so an edge-parallel baseline retains its ``E×F`` per-edge intermediates
across a whole training sequence, exactly as PyG-T does on the GPU.

All tensor storage is registered with the active simulated device
(:mod:`repro.device`), so peak-memory comparisons are measured, not modeled.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.tensor import functional
from repro.tensor import init
from repro.tensor import nn
from repro.tensor import optim

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled", "functional", "init", "nn", "optim"]
