"""Parameter initializers (seedable, Glorot/Kaiming/uniform)."""

from __future__ import annotations

import math

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = [
    "set_seed",
    "get_rng_state",
    "set_rng_state",
    "glorot_uniform",
    "kaiming_uniform",
    "uniform",
    "zeros",
    "ones",
    "normal",
]

_RNG = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Re-seed the global initializer RNG (used by benchmarks for parity
    between STGraph and the baseline: both models draw the same weights)."""
    global _RNG
    _RNG = np.random.default_rng(seed)


def get_rng_state() -> dict:
    """The global RNG's bit-generator state (JSON-serializable).

    Captured into training checkpoints so a resumed run continues the exact
    random stream the killed run would have drawn from.
    """
    return _RNG.bit_generator.state


def set_rng_state(state: dict) -> None:
    """Restore a state captured by :func:`get_rng_state`."""
    _RNG.bit_generator.state = state


def uniform(shape: tuple[int, ...], lo: float = -0.1, hi: float = 0.1, requires_grad: bool = True) -> Tensor:
    """Uniform values in [lo, hi]."""
    return Tensor(_RNG.uniform(lo, hi, size=shape).astype(np.float32), requires_grad=requires_grad)


def normal(shape: tuple[int, ...], std: float = 0.01, requires_grad: bool = True) -> Tensor:
    """Zero-mean Gaussian values with the given std."""
    return Tensor((_RNG.standard_normal(shape) * std).astype(np.float32), requires_grad=requires_grad)


def glorot_uniform(shape: tuple[int, ...], requires_grad: bool = True) -> Tensor:
    """Glorot/Xavier uniform — the initializer GCN-style layers use."""
    fan_in = shape[0] if len(shape) > 0 else 1
    fan_out = shape[1] if len(shape) > 1 else fan_in
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, requires_grad=requires_grad)


def kaiming_uniform(shape: tuple[int, ...], requires_grad: bool = True) -> Tensor:
    """Kaiming/He uniform (fan-in scaled), for ReLU stacks."""
    fan_in = shape[0] if len(shape) > 0 else 1
    bound = math.sqrt(3.0 / fan_in) if fan_in > 0 else 0.0
    return uniform(shape, -bound, bound, requires_grad=requires_grad)


def zeros(shape: tuple[int, ...], requires_grad: bool = True) -> Tensor:
    """Zero-initialized parameter tensor."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape: tuple[int, ...], requires_grad: bool = True) -> Tensor:
    """One-initialized parameter tensor."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)
