"""User-facing differentiable functions and loss criteria.

Thin wrappers over the :mod:`repro.tensor.ops` Function classes, plus the
two losses the paper's benchmarks use:

* :func:`mse_loss` — node-classification/regression on the static-temporal
  datasets ("MSE as the loss criterion").
* :func:`bce_with_logits_loss` — link prediction on the DTDG datasets
  ("Binary Cross Entropy Loss with Logits").
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.tensor import ops
from repro.tensor.tensor import Tensor

__all__ = [
    "add", "sub", "mul", "div", "neg", "pow", "sqrt", "exp", "log",
    "matmul", "transpose", "reshape", "getitem", "concat", "stack",
    "index_select", "scatter_add", "sum", "mean", "max", "maximum",
    "sigmoid", "tanh", "relu", "leaky_relu", "softmax", "clip", "dropout",
    "clone", "mse_loss", "bce_with_logits_loss", "cross_entropy_loss",
    "l1_loss", "zeros", "ones",
]


def add(a: Any, b: Any) -> Tensor:
    """Elementwise sum with broadcasting."""
    return ops.Add.apply(a, b)


def sub(a: Any, b: Any) -> Tensor:
    """Elementwise difference with broadcasting."""
    return ops.Sub.apply(a, b)


def mul(a: Any, b: Any) -> Tensor:
    """Elementwise product with broadcasting."""
    return ops.Mul.apply(a, b)


def div(a: Any, b: Any) -> Tensor:
    """Elementwise quotient with broadcasting."""
    return ops.Div.apply(a, b)


def neg(a: Any) -> Tensor:
    """Elementwise negation."""
    return ops.Neg.apply(a)


def pow(a: Any, exponent: float) -> Tensor:  # noqa: A001 - mirrors torch.pow
    """Elementwise power with a constant exponent."""
    return ops.Pow.apply(a, exponent=exponent)


def sqrt(a: Any) -> Tensor:
    """Elementwise square root."""
    return ops.Sqrt.apply(a)


def exp(a: Any) -> Tensor:
    """Elementwise exponential."""
    return ops.Exp.apply(a)


def log(a: Any) -> Tensor:
    """Elementwise natural logarithm."""
    return ops.Log.apply(a)


def matmul(a: Any, b: Any) -> Tensor:
    """Matrix product ``a @ b``."""
    return ops.MatMul.apply(a, b)


def transpose(a: Any) -> Tensor:
    """2-D transpose."""
    return ops.Transpose.apply(a)


def reshape(a: Any, shape: tuple[int, ...]) -> Tensor:
    """View with a new shape (-1 infers one dimension)."""
    return ops.Reshape.apply(a, shape=tuple(shape))


def getitem(a: Any, idx: Any) -> Tensor:
    """Differentiable indexing/slicing (gather on int arrays)."""
    return ops.GetItem.apply(a, idx=idx)


def concat(tensors: Sequence[Any], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    return ops.Concat.apply(*tensors, axis=axis)


def stack(tensors: Sequence[Any], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    return ops.Stack.apply(*tensors, axis=axis)


def index_select(a: Any, index: np.ndarray) -> Tensor:
    """Per-edge gather: ``out[e] = a[index[e]]`` (materializes E×F)."""
    return ops.IndexSelect.apply(a, index=np.asarray(index, dtype=np.int64))


def scatter_add(a: Any, index: np.ndarray, num_targets: int) -> Tensor:
    """Per-edge reduce: ``out[index[e]] += a[e]`` into ``num_targets`` rows."""
    return ops.ScatterAdd.apply(a, index=np.asarray(index, dtype=np.int64), num_targets=int(num_targets))


def sum(a: Any, axis: int | None = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Sum over all elements or one axis."""
    return ops.Sum.apply(a, axis=axis, keepdims=keepdims)


def mean(a: Any, axis: int | None = None, keepdims: bool = False) -> Tensor:
    """Mean over all elements or one axis."""
    return ops.Mean.apply(a, axis=axis, keepdims=keepdims)


def max(a: Any, axis: int | None = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over all elements or one axis (subgradient on ties)."""
    return ops.Max.apply(a, axis=axis, keepdims=keepdims)


def maximum(a: Any, b: Any) -> Tensor:
    """Elementwise maximum of two tensors."""
    return ops.Maximum.apply(a, b)


def sigmoid(a: Any) -> Tensor:
    """Numerically stable logistic sigmoid."""
    return ops.Sigmoid.apply(a)


def tanh(a: Any) -> Tensor:
    """Hyperbolic tangent."""
    return ops.Tanh.apply(a)


def relu(a: Any) -> Tensor:
    """Rectified linear unit."""
    return ops.ReLU.apply(a)


def leaky_relu(a: Any, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    return ops.LeakyReLU.apply(a, negative_slope=negative_slope)


def softmax(a: Any, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (max-shifted for stability)."""
    return ops.Softmax.apply(a, axis=axis)


def clip(a: Any, lo: float, hi: float) -> Tensor:
    """Clamp values into [lo, hi] (zero gradient outside)."""
    return ops.Clip.apply(a, lo=lo, hi=hi)


def dropout(a: Any, p: float = 0.5, training: bool = True, seed: int | None = None) -> Tensor:
    """Inverted dropout; identity when not training or p<=0."""
    if not training or p <= 0.0:
        return a if isinstance(a, Tensor) else Tensor(np.asarray(a, dtype=np.float32))
    return ops.Dropout.apply(a, p=p, seed=seed)


def clone(a: Any) -> Tensor:
    """Copy that participates in autodiff (gradient passes through)."""
    return ops.Clone.apply(a)


def zeros(shape: tuple[int, ...] | int, requires_grad: bool = False) -> Tensor:
    """Zero-filled float32 tensor."""
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=requires_grad)


def ones(shape: tuple[int, ...] | int, requires_grad: bool = False) -> Tensor:
    """One-filled float32 tensor."""
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=requires_grad)


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def mse_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    diff = sub(pred, target)
    return mean(mul(diff, diff))


def l1_loss(pred: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean absolute error (smoothed at 0 for differentiability)."""
    diff = sub(pred, target)
    return mean(sqrt(add(mul(diff, diff), 1e-12)))


class _BCEWithLogits(ops.Function):
    """Numerically stable BCE-with-logits.

    ``loss = max(x,0) - x*y + log(1 + exp(-|x|))`` averaged over elements,
    with the closed-form gradient ``sigmoid(x) - y`` to avoid intermediate
    blow-up — the same fused formulation PyTorch ships.
    """

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        self.save_for_backward(logits, targets)
        loss = np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
        return np.asarray(loss.mean(), dtype=logits.dtype)

    def backward(self, grad: np.ndarray):
        logits, targets = self.saved
        sig = np.where(
            logits >= 0,
            1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60))),
            np.exp(np.clip(logits, -60, 60)) / (1.0 + np.exp(np.clip(logits, -60, 60))),
        )
        g = grad * (sig - targets) / logits.size
        return g.astype(logits.dtype), None


def bce_with_logits_loss(logits: Tensor, targets: Tensor | np.ndarray) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits (the paper's DTDG criterion)."""
    return _BCEWithLogits.apply(logits, targets)


class _CrossEntropy(ops.Function):
    """Softmax cross-entropy over integer class labels.

    Fused log-sum-exp formulation with the closed-form gradient
    ``softmax(x) - onehot(y)`` (numerically stable, no intermediate
    softmax materialized on the tape).
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        labels = labels.astype(np.int64).reshape(-1)
        shifted = logits - logits.max(axis=1, keepdims=True)
        lse = np.log(np.exp(shifted).sum(axis=1))
        picked = shifted[np.arange(len(labels)), labels]
        self.save_for_backward(shifted, labels)
        return np.asarray((lse - picked).mean(), dtype=logits.dtype)

    def backward(self, grad: np.ndarray):
        shifted, labels = self.saved
        e = np.exp(shifted)
        soft = e / e.sum(axis=1, keepdims=True)
        soft[np.arange(len(labels)), labels] -= 1.0
        return (grad * soft / len(labels)).astype(shifted.dtype), None


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; ``labels`` are integer class ids."""
    labels = np.asarray(labels)
    if isinstance(logits, Tensor) and logits.ndim != 2:
        raise ValueError("cross_entropy_loss expects (N, C) logits")
    return _CrossEntropy.apply(logits, Tensor(labels.astype(np.float32), _track=False))
