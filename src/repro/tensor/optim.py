"""Optimizers: SGD (with momentum), Adam, RMSprop, plus grad clipping.

The paper trains TGCN with Adam defaults; SGD/RMSprop are provided for the
layer library's users and exercised by tests.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor.nn import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "clip_grad_norm"]


class Optimizer:
    """Base class holding the parameter list and learning rate."""
    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"invalid learning rate {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Optimizer buffers for checkpointing (subclasses extend)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        """Restore buffers saved by :meth:`state_dict`."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""
    def __init__(self, params: Iterable[Parameter], lr: float = 0.01, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity[i]
                v = self.momentum * v + g if v is not None else g.copy()
                self._velocity[i] = v
                g = v
            p.data -= self.lr * g

    def state_dict(self) -> dict:
        state = super().state_dict()
        state["momentum"] = self.momentum
        state["velocity"] = [v.copy() if v is not None else None for v in self._velocity]
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self.momentum = float(state["momentum"])
        velocity = state["velocity"]
        if len(velocity) != len(self.params):
            raise ValueError("velocity buffers do not match parameter count")
        self._velocity = [v.copy() if v is not None else None for v in velocity]


class Adam(Optimizer):
    """Adam with bias correction (the paper's training optimizer)."""
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m, v = self._m[i], self._v[i]
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def state_dict(self) -> dict:
        state = super().state_dict()
        state.update(
            t=self._t,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
        )
        return state

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        if len(state["m"]) != len(self.params):
            raise ValueError("moment buffers do not match parameter count")
        self._t = int(state["t"])
        self._m = [m.copy() for m in state["m"]]
        self._v = [v.copy() for v in state["v"]]


class RMSprop(Optimizer):
    """RMSprop with a running squared-gradient average."""
    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2, alpha: float = 0.99, eps: float = 1e-8) -> None:
        super().__init__(params, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            sq = self._sq[i]
            sq *= self.alpha
            sq += (1.0 - self.alpha) * (p.grad * p.grad)
            p.data -= self.lr * p.grad / (np.sqrt(sq) + self.eps)


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.
    Returns the pre-clip norm."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return total
