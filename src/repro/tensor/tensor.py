"""Core :class:`Tensor` type and the reverse-mode tape.

Design notes
------------
* A ``Tensor`` owns a ``numpy.ndarray`` (``data``) registered with the
  active simulated device so the benchmark harness can measure residency.
* Ops are instances of :class:`repro.tensor.ops.Function`.  Applying one
  records it as ``_ctx`` on the output tensor; ``backward()`` topologically
  sorts the tape and pushes vector-Jacobian products backwards.
* Gradients accumulate into ``grad`` (``+=``), matching PyTorch semantics so
  the same parameter used at several timestamps of a TGNN sequence receives
  the sum of its per-timestamp gradients.
* ``no_grad()`` disables tape recording, used for evaluation and for the
  STGraph executor's manually-orchestrated regions.
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
from typing import Any, Iterator, Sequence

import numpy as np

from repro.device import current_device

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable autodiff tape recording inside the block."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """Whether ops currently record onto the autodiff tape."""
    return _GRAD_ENABLED


_creation_counter = itertools.count()


class Tensor:
    """An autodiff-capable array on the simulated device."""

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "_seq", "__weakref__")

    def __init__(
        self,
        data: np.ndarray | Sequence[float] | float | int,
        requires_grad: bool = False,
        _track: bool = True,
    ) -> None:
        if isinstance(data, Tensor):
            raise TypeError("wrapping a Tensor in a Tensor; use .detach() or .clone()")
        if not isinstance(data, np.ndarray):
            data = np.asarray(data, dtype=np.float32)
        if data.dtype == np.float64:
            data = data.astype(np.float32)
        self.data: np.ndarray = data
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._ctx = None  # Function that produced this tensor, if any
        self._seq = next(_creation_counter)
        if _track:
            current_device().alloc.adopt(data, tag="tensor")

    # ------------------------------------------------------------------
    # Shape & dtype introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    @property
    def dtype(self) -> np.dtype:
        """Element dtype (float32 throughout the framework)."""
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Storage size in bytes."""
        return self.data.nbytes

    def size(self, dim: int | None = None) -> int | tuple[int, ...]:
        """Shape, or the extent of one dimension."""
        return self.data.shape if dim is None else self.data.shape[dim]

    def numel(self) -> int:
        """Total number of elements."""
        return int(self.data.size)

    def item(self) -> float:
        """The value of a single-element tensor as a float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy); treat as read-only."""
        return self.data

    # ------------------------------------------------------------------
    # Graph manipulation
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """A tensor sharing storage but cut from the tape."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._ctx = None
        out._seq = next(_creation_counter)
        return out

    def clone(self) -> "Tensor":
        """Differentiable copy (see :func:`functional.clone`)."""
        from repro.tensor import functional as F

        return F.clone(self)

    def zero_grad(self) -> None:
        """Drop the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-sweep the tape from this tensor.

        ``grad`` defaults to ones (the usual scalar-loss case requires a
        0-d/1-element tensor).

        Nodes are processed with Kahn's algorithm using a max-heap on each
        tensor's creation sequence number: among all dependency-ready nodes
        the most recently *created* runs first, so the sweep unwinds the
        forward pass in exact LIFO order even across independent branches.
        This ordering is what lets the temporally-aware executor rely on
        strict State/Graph Stack discipline (Algorithm 1's per-timestamp
        reverse walk) without driving backward itself.
        """
        if not self.requires_grad and self._ctx is None:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)

        # Discover the reachable tape and count, per node, how many
        # consumers will contribute gradient to it (iterative: recursion
        # would overflow on long TGNN sequences).
        consumers: dict[int, int] = {}
        nodes: dict[int, Tensor] = {id(self): self}
        stack: list[Tensor] = [self]
        visited: set[int] = {id(self)}
        while stack:
            node = stack.pop()
            if node._ctx is None:
                continue
            for parent in node._ctx.inputs:
                if not isinstance(parent, Tensor) or parent._ctx is None:
                    continue
                consumers[id(parent)] = consumers.get(id(parent), 0) + 1
                if id(parent) not in visited:
                    visited.add(id(parent))
                    nodes[id(parent)] = parent
                    stack.append(parent)

        grads: dict[int, np.ndarray] = {id(self): grad}
        ready: list[tuple[int, int]] = []
        if self._ctx is not None:
            heapq.heappush(ready, (-self._seq, id(self)))
        while ready:
            _, node_id = heapq.heappop(ready)
            node = nodes[node_id]
            node_grad = grads.pop(node_id, None)
            ctx = node._ctx
            node._ctx = None  # free saved tensors as soon as consumed
            if ctx is None:
                continue
            if node_grad is None:
                # No gradient reached this node; its parents still become
                # ready (with no contribution) so their tape state frees.
                for parent in ctx.inputs:
                    if isinstance(parent, Tensor) and parent._ctx is not None and id(parent) in consumers:
                        consumers[id(parent)] -= 1
                        if consumers[id(parent)] == 0:
                            heapq.heappush(ready, (-parent._seq, id(parent)))
                continue
            input_grads = ctx.backward(node_grad)
            if not isinstance(input_grads, tuple):
                input_grads = (input_grads,)
            if len(input_grads) != len(ctx.inputs):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(input_grads)} grads "
                    f"for {len(ctx.inputs)} inputs"
                )
            for parent, g in zip(ctx.inputs, input_grads):
                if not isinstance(parent, Tensor):
                    continue
                if g is not None:
                    if not (parent.requires_grad or parent._ctx is not None):
                        g = None
                    elif g.shape != parent.data.shape:
                        raise RuntimeError(
                            f"{type(ctx).__name__} produced grad of shape {g.shape} "
                            f"for input of shape {parent.data.shape}"
                        )
                if g is not None:
                    if parent._ctx is not None:
                        acc = grads.get(id(parent))
                        grads[id(parent)] = g if acc is None else acc + g
                    if parent.requires_grad:
                        if parent.grad is None:
                            parent.grad = np.zeros_like(parent.data)
                        parent.grad += g
                if parent._ctx is not None and id(parent) in consumers:
                    consumers[id(parent)] -= 1
                    if consumers[id(parent)] == 0:
                        heapq.heappush(ready, (-parent._seq, id(parent)))

        if self.requires_grad and self._ctx is None:
            if self.grad is None:
                self.grad = np.zeros_like(self.data)
            if not visited - {id(self)}:
                self.grad += grad

    # ------------------------------------------------------------------
    # Operator sugar (delegates to functional)
    # ------------------------------------------------------------------
    def _f(self):
        from repro.tensor import functional as F

        return F

    def __add__(self, other: Any) -> "Tensor":
        return self._f().add(self, other)

    def __radd__(self, other: Any) -> "Tensor":
        return self._f().add(other, self)

    def __sub__(self, other: Any) -> "Tensor":
        return self._f().sub(self, other)

    def __rsub__(self, other: Any) -> "Tensor":
        return self._f().sub(other, self)

    def __mul__(self, other: Any) -> "Tensor":
        return self._f().mul(self, other)

    def __rmul__(self, other: Any) -> "Tensor":
        return self._f().mul(other, self)

    def __truediv__(self, other: Any) -> "Tensor":
        return self._f().div(self, other)

    def __rtruediv__(self, other: Any) -> "Tensor":
        return self._f().div(other, self)

    def __neg__(self) -> "Tensor":
        return self._f().neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return self._f().pow(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self._f().matmul(self, other)

    def __getitem__(self, idx: Any) -> "Tensor":
        return self._f().getitem(self, idx)

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """See :func:`repro.tensor.functional.sum`."""
        return self._f().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """See :func:`repro.tensor.functional.mean`."""
        return self._f().mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        """See :func:`repro.tensor.functional.reshape`."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._f().reshape(self, shape)

    def transpose(self) -> "Tensor":
        """2-D transpose (also available as ``.T``)."""
        return self._f().transpose(self)

    @property
    def T(self) -> "Tensor":
        """2-D transpose."""
        return self.transpose()

    def sigmoid(self) -> "Tensor":
        """See :func:`repro.tensor.functional.sigmoid`."""
        return self._f().sigmoid(self)

    def tanh(self) -> "Tensor":
        """See :func:`repro.tensor.functional.tanh`."""
        return self._f().tanh(self)

    def relu(self) -> "Tensor":
        """See :func:`repro.tensor.functional.relu`."""
        return self._f().relu(self)

    def exp(self) -> "Tensor":
        """See :func:`repro.tensor.functional.exp`."""
        return self._f().exp(self)

    def log(self) -> "Tensor":
        """See :func:`repro.tensor.functional.log`."""
        return self._f().log(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_tag})"


def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Construct a tensor from array-like data (float32)."""
    return Tensor(np.asarray(data, dtype=np.float32), requires_grad=requires_grad)
