"""STGraph-side dataset containers.

A dataset bundles a graph object (ready for the executor), per-timestamp
features/targets, and conversion to the PyG-T signal iterators so the same
data drives both frameworks in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.pygt.signal import DynamicGraphTemporalSignal, StaticGraphTemporalSignal
from repro.graph.csr import edge_density
from repro.graph.dtdg import DTDG
from repro.graph.gpma_graph import GPMAGraph
from repro.graph.naive import NaiveGraph
from repro.graph.static import StaticGraph

__all__ = ["StaticTemporalDataset", "DynamicTemporalDataset"]


@dataclass
class StaticTemporalDataset:
    """Static structure + temporal node signal (Definition II.1)."""

    name: str
    src: np.ndarray
    dst: np.ndarray
    num_nodes: int
    features: list[np.ndarray] = field(repr=False)  # (N, F) per timestamp
    targets: list[np.ndarray] = field(repr=False)  # (N, 1) per timestamp

    @property
    def num_edges(self) -> int:
        """Edge count of the static structure."""
        return len(self.src)

    @property
    def num_timestamps(self) -> int:
        """Number of feature/target timestamps."""
        return len(self.features)

    @property
    def feature_size(self) -> int:
        """Columns per node feature matrix."""
        return self.features[0].shape[1]

    def density(self) -> float:
        """Directed edge density (drives the Figure 5/6 regimes)."""
        return edge_density(self.num_nodes, self.num_edges)

    def build_graph(self, sort_by_degree: bool = True) -> StaticGraph:
        """Construct the STGraph StaticGraph for training."""
        return StaticGraph(self.src, self.dst, self.num_nodes, sort_by_degree)

    def to_pygt_signal(self) -> StaticGraphTemporalSignal:
        """The same data as a PyG-T static signal iterator."""
        edge_index = np.stack([self.src, self.dst]).astype(np.int64)
        return StaticGraphTemporalSignal(edge_index, self.features, list(self.targets))

    def summary_row(self) -> dict:
        """Table II row for this dataset."""
        return {
            "dataset": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "timestamps": self.num_timestamps,
            "type": "Static",
            "density": round(self.density(), 4),
        }


@dataclass
class DynamicTemporalDataset:
    """DTDG + per-timestamp features (Definition II.2), link-prediction style."""

    name: str
    dtdg: DTDG
    features: list[np.ndarray] = field(repr=False)

    @property
    def num_nodes(self) -> int:
        """Shared vertex-universe size."""
        return self.dtdg.num_nodes

    @property
    def num_timestamps(self) -> int:
        """Number of snapshots."""
        return self.dtdg.num_timestamps

    @property
    def feature_size(self) -> int:
        """Columns per node feature matrix."""
        return self.features[0].shape[1]

    def build_naive(self, sort_by_degree: bool = True) -> NaiveGraph:
        """Construct the snapshot-materializing NaiveGraph."""
        return NaiveGraph(self.dtdg, sort_by_degree)

    def build_gpma(
        self,
        sort_by_degree: bool = True,
        enable_cache: bool = True,
        enable_csr_cache: bool = True,
        csr_cache_size: int = 4,
    ) -> GPMAGraph:
        """Construct the on-demand GPMAGraph."""
        return GPMAGraph(self.dtdg, sort_by_degree, enable_cache, enable_csr_cache, csr_cache_size)

    def to_pygt_signal(self) -> DynamicGraphTemporalSignal:
        """The same data as a PyG-T dynamic signal iterator."""
        edge_indices = []
        for t in range(self.num_timestamps):
            s, d = self.dtdg.snapshot_edges(t)
            edge_indices.append(np.stack([s, d]))
        return DynamicGraphTemporalSignal(edge_indices, self.features, [None] * self.num_timestamps)

    def summary_row(self) -> dict:
        """Table II row for this dataset."""
        return {
            "dataset": self.name,
            "nodes": self.num_nodes,
            "edges": max(self.dtdg.snapshot_edge_count(t) for t in range(self.num_timestamps)),
            "timestamps": self.num_timestamps,
            "type": "Dynamic",
            "max_pct_change": round(self.dtdg.max_percent_change(), 2),
        }
