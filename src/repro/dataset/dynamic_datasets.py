"""The five dynamic dataset stand-ins (Table II rows 6-10).

Each loader synthesizes a timestamped interaction stream with the real
network's statistics and discretizes it per §VII-B (first half = first
snapshot, window slid under a percent-change bound).

==================  ======  =========  ==========================
dataset               N       events   character
==================  ======  =========  ==========================
wiki-talk-temporal   120 K   2 000 K   talk-page edits (pruned to 2M)
sx-superuser         194 K   1 443 K   Q&A interactions
sx-stackoverflow     194 K   2 000 K   Q&A interactions (pruned)
sx-mathoverflow       24 K     506 K   denser Q&A community
reddit-title          55 K     858 K   subreddit hyperlinks
==================  ======  =========  ==========================

``scale`` shrinks both axes (default benchmarks run at small scale; pass
``scale=1.0`` for Table II sizes).  Features are ``feature_size`` random
per-node embeddings, constant over time, as in the paper's link-prediction
setup where structure (not signal) evolves.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.discretize import discretize_edge_stream
from repro.dataset.generators import temporal_edge_stream
from repro.dataset.signal import DynamicTemporalDataset

__all__ = [
    "load_wiki_talk",
    "load_sx_superuser",
    "load_sx_stackoverflow",
    "load_sx_mathoverflow",
    "load_reddit_title",
    "DYNAMIC_DATASETS",
]


def _build(
    name: str,
    nodes: int,
    events: int,
    seed: int,
    scale: float,
    percent_change: float,
    feature_size: int,
    max_snapshots: int | None,
    exponent: float,
) -> DynamicTemporalDataset:
    n = max(16, int(round(nodes * scale)))
    m = max(64, int(round(events * scale)))
    src, dst, _times = temporal_edge_stream(n, m, seed, exponent=exponent)
    dtdg = discretize_edge_stream(
        src, dst, n, percent_change=percent_change, max_snapshots=max_snapshots
    )
    rng = np.random.default_rng(seed + 7)
    x = rng.standard_normal((n, feature_size)).astype(np.float32)
    features = [x for _ in range(dtdg.num_timestamps)]
    return DynamicTemporalDataset(name, dtdg, features)


def load_wiki_talk(
    scale: float = 0.01, percent_change: float = 5.0, feature_size: int = 8,
    max_snapshots: int | None = 12, seed: int = 201,
) -> DynamicTemporalDataset:
    """wiki-talk-temporal stand-in (sparsest interaction stream)."""
    return _build("wiki-talk-temporal", 120_000, 2_000_000, seed, scale,
                  percent_change, feature_size, max_snapshots, exponent=1.3)


def load_sx_superuser(
    scale: float = 0.01, percent_change: float = 5.0, feature_size: int = 8,
    max_snapshots: int | None = 12, seed: int = 202,
) -> DynamicTemporalDataset:
    """sx-superuser stand-in."""
    return _build("sx-superuser", 194_000, 1_443_000, seed, scale,
                  percent_change, feature_size, max_snapshots, exponent=1.25)


def load_sx_stackoverflow(
    scale: float = 0.01, percent_change: float = 5.0, feature_size: int = 8,
    max_snapshots: int | None = 12, seed: int = 203,
) -> DynamicTemporalDataset:
    """sx-stackoverflow stand-in (pruned to 2M events, as in the paper)."""
    return _build("sx-stackoverflow", 194_000, 2_000_000, seed, scale,
                  percent_change, feature_size, max_snapshots, exponent=1.25)


def load_sx_mathoverflow(
    scale: float = 0.01, percent_change: float = 5.0, feature_size: int = 8,
    max_snapshots: int | None = 12, seed: int = 204,
) -> DynamicTemporalDataset:
    """sx-mathoverflow stand-in (densest; earliest Figure 7 crossover)."""
    # Denser community: fewer nodes per event.
    return _build("sx-mathoverflow", 24_000, 506_000, seed, scale,
                  percent_change, feature_size, max_snapshots, exponent=1.1)


def load_reddit_title(
    scale: float = 0.01, percent_change: float = 5.0, feature_size: int = 8,
    max_snapshots: int | None = 12, seed: int = 205,
) -> DynamicTemporalDataset:
    """reddit-title stand-in (subreddit hyperlink stream)."""
    return _build("reddit-title", 55_000, 858_000, seed, scale,
                  percent_change, feature_size, max_snapshots, exponent=1.15)


#: name -> loader, in Table II order
DYNAMIC_DATASETS = {
    "wiki-talk-temporal": load_wiki_talk,
    "sx-superuser": load_sx_superuser,
    "sx-stackoverflow": load_sx_stackoverflow,
    "sx-mathoverflow": load_sx_mathoverflow,
    "reddit-title": load_reddit_title,
}
