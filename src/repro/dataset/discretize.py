"""Edge-stream discretization into DTDG snapshots (paper §VII-B).

"The datasets are preprocessed to create discrete-time snapshots.  The
first half of the dataset is the first snapshot.  Then the window is moved
to obtain a second snapshot such that the percent change between any two
consecutive snapshots is always less than 10%."

The window covers ``window_fraction`` of the stream (default one half) and
slides by a step chosen so the symmetric difference between consecutive
snapshot edge *sets* stays below ``percent_change`` of the previous
snapshot's size.  Duplicate events inside a window collapse to one edge.
"""

from __future__ import annotations

import numpy as np

from repro.graph.dtdg import DTDG
from repro.graph.labels import encode_edges

__all__ = ["discretize_edge_stream"]


def discretize_edge_stream(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    percent_change: float = 10.0,
    window_fraction: float = 0.5,
    max_snapshots: int | None = None,
) -> DTDG:
    """Slide a window over a chronological edge stream and emit snapshots.

    ``percent_change`` bounds |Δ(S_t, S_{t+1})| / |S_t| · 100.  The slide
    step starts at the naive estimate (each slid event adds ≤1 and removes
    ≤1 edge) and halves until the realized change respects the bound —
    duplicates inside windows make the naive estimate conservative already,
    so this almost never iterates.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    n_events = len(src)
    if n_events < 4:
        raise ValueError("edge stream too short to discretize")
    window = max(2, int(n_events * window_fraction))
    keys = encode_edges(src, dst, num_nodes)

    def window_keys(start: int) -> np.ndarray:
        return np.unique(keys[start : start + window])

    snapshots_keys = [window_keys(0)]
    step = max(1, int(len(snapshots_keys[0]) * percent_change / 100.0 / 2.0))
    start = 0
    while start + step + window <= n_events:
        prev = snapshots_keys[-1]
        budget = percent_change / 100.0 * max(1, len(prev))

        def realized(trial: int) -> tuple[int, np.ndarray]:
            nxt = window_keys(start + trial)
            changes = len(np.setdiff1d(nxt, prev, assume_unique=True)) + len(
                np.setdiff1d(prev, nxt, assume_unique=True)
            )
            return changes, nxt

        trial = step
        changes, nxt = realized(trial)
        # Duplicates inside windows make the slid-events estimate very
        # conservative — grow the step until the realized change approaches
        # (but never exceeds) the bound, so sweeping percent_change actually
        # spreads the snapshots (Figure 8's x-axis).
        while changes < 0.6 * budget and start + 2 * trial + window <= n_events:
            c2, n2 = realized(2 * trial)
            if c2 > budget:
                break
            trial, changes, nxt = 2 * trial, c2, n2
        while changes > budget and trial > 1:
            trial = max(1, trial // 2)
            changes, nxt = realized(trial)
        snapshots_keys.append(nxt)
        start += trial
        step = trial
        if max_snapshots is not None and len(snapshots_keys) >= max_snapshots:
            break

    snapshot_edges = []
    for k in snapshots_keys:
        snapshot_edges.append((k // num_nodes, k % num_nodes))
    return DTDG(snapshot_edges, num_nodes)
