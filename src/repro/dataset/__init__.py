"""Dataset loaders (paper §VI-3, Table II).

The paper evaluates on five static-temporal datasets (PyG-T's WVM, Windmill
Output, Hungary Chickenpox, Montevideo Bus, PedalMe) and five dynamic SNAP
networks (wiki-talk-temporal, sx-superuser, sx-stackoverflow,
sx-mathoverflow, reddit-title).  This environment has no network access, so
each loader generates a **seeded synthetic stand-in matching the real
dataset's published statistics** — node/edge counts, density, timestamp
count, and temporal-signal character (see DESIGN.md's substitution table).
A ``scale`` argument shrinks node/edge counts proportionally so benchmark
sweeps finish in CI time; ``scale=1.0`` reproduces Table II's sizes.

Dynamic datasets are temporal edge streams discretized exactly as §VII-B
describes: the first half of the stream is the first snapshot, then the
window slides so consecutive snapshots differ by less than a target
percentage.
"""

from repro.dataset.signal import StaticTemporalDataset, DynamicTemporalDataset
from repro.dataset.generators import (
    gnp_edges,
    powerlaw_edges,
    smooth_signal,
    temporal_edge_stream,
)
from repro.dataset.discretize import discretize_edge_stream
from repro.dataset.io import load_dataset, save_dataset
from repro.dataset.static_datasets import (
    load_hungary_chickenpox,
    load_montevideo_bus,
    load_pedalme,
    load_wikimaths,
    load_windmill_output,
    STATIC_DATASETS,
)
from repro.dataset.dynamic_datasets import (
    load_reddit_title,
    load_sx_mathoverflow,
    load_sx_stackoverflow,
    load_sx_superuser,
    load_wiki_talk,
    DYNAMIC_DATASETS,
)

__all__ = [
    "StaticTemporalDataset",
    "DynamicTemporalDataset",
    "gnp_edges",
    "powerlaw_edges",
    "smooth_signal",
    "temporal_edge_stream",
    "discretize_edge_stream",
    "save_dataset",
    "load_dataset",
    "load_wikimaths",
    "load_windmill_output",
    "load_hungary_chickenpox",
    "load_montevideo_bus",
    "load_pedalme",
    "load_wiki_talk",
    "load_sx_superuser",
    "load_sx_stackoverflow",
    "load_sx_mathoverflow",
    "load_reddit_title",
    "STATIC_DATASETS",
    "DYNAMIC_DATASETS",
]
