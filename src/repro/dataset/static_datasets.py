"""The five static-temporal dataset stand-ins (Table II rows 1-5).

Each loader generates a seeded synthetic dataset matching the real
dataset's published statistics (node count, edge count, timestamp count,
density regime); features are ``lags`` past signal values per node and the
target is the next value — the PyG-T convention the paper trains with
("node classification task with MSE as the loss criterion" on a continuous
signal, i.e. next-step regression).

========================  =====  =======  ====  ============================
dataset                    N      E        T    character
========================  =====  =======  ====  ============================
Wikipedia Vital Maths      1068   27 079   731  sparse page graph, daily visits
Windmill Output             319  101 761    ~17k hourly, near-complete graph
Hungary Chickenpox           20      102   522  county adjacency, weekly cases
Montevideo Bus              675      690   744  very sparse line graph, hourly
PedalMe                      15      225    36  complete-ish delivery zones
========================  =====  =======  ====  ============================
"""

from __future__ import annotations

import numpy as np

from repro.dataset.generators import gnp_edges, powerlaw_edges, smooth_signal
from repro.dataset.signal import StaticTemporalDataset

__all__ = [
    "load_wikimaths",
    "load_windmill_output",
    "load_hungary_chickenpox",
    "load_montevideo_bus",
    "load_pedalme",
    "STATIC_DATASETS",
]


def _lagged(signal: np.ndarray, lags: int) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Features = ``lags`` past values per node, target = current value."""
    T, N = signal.shape
    features, targets = [], []
    for t in range(lags, T):
        features.append(np.ascontiguousarray(signal[t - lags : t].T))  # (N, lags)
        targets.append(signal[t][:, None].copy())  # (N, 1)
    return features, targets


def _scaled(n: int, scale: float, lo: int = 2) -> int:
    return max(lo, int(round(n * scale)))


def load_wikimaths(lags: int = 8, scale: float = 1.0, num_timestamps: int = 120, seed: int = 101) -> StaticTemporalDataset:
    """Wikipedia Vital Mathematics stand-in (sparse page graph, daily visits)."""
    n = _scaled(1068, scale)
    e = _scaled(27079, scale * scale if scale < 1 else 1.0 * scale, lo=4)
    e = min(e, n * (n - 1))
    src, dst = powerlaw_edges(n, e, seed)
    sig = smooth_signal(n, num_timestamps + lags, seed + 1, period=7.0)
    feats, targs = _lagged(sig, lags)
    return StaticTemporalDataset("WikiMaths (WVM)", src, dst, n, feats, targs)


def load_windmill_output(lags: int = 8, scale: float = 1.0, num_timestamps: int = 120, seed: int = 102) -> StaticTemporalDataset:
    """Windmill Output stand-in (near-complete correlation graph, hourly)."""
    n = _scaled(319, scale)
    e = min(_scaled(101761, scale * scale if scale < 1 else scale, lo=4), n * (n - 1))
    src, dst = gnp_edges(n, e, seed)  # near-complete correlation graph
    sig = smooth_signal(n, num_timestamps + lags, seed + 1, period=24.0)
    feats, targs = _lagged(sig, lags)
    return StaticTemporalDataset("Windmill Output (WO)", src, dst, n, feats, targs)


def load_hungary_chickenpox(lags: int = 8, scale: float = 1.0, num_timestamps: int = 120, seed: int = 103) -> StaticTemporalDataset:
    """Hungary Chickenpox stand-in (county adjacency, weekly cases)."""
    n = _scaled(20, scale)
    e = min(_scaled(102, scale, lo=4), n * (n - 1))
    src, dst = gnp_edges(n, e, seed)  # county adjacency (density ≈ 0.255)
    sig = smooth_signal(n, num_timestamps + lags, seed + 1, period=52.0)
    feats, targs = _lagged(sig, lags)
    return StaticTemporalDataset("Hungary Chickenpox (HC)", src, dst, n, feats, targs)


def load_montevideo_bus(lags: int = 8, scale: float = 1.0, num_timestamps: int = 120, seed: int = 104) -> StaticTemporalDataset:
    """Montevideo Bus stand-in (very sparse line graph, hourly inflow)."""
    n = _scaled(675, scale)
    e = min(_scaled(690, scale, lo=4), n * (n - 1))
    src, dst = gnp_edges(n, e, seed)  # bus-line chain graph (density ≈ 0.0015)
    sig = smooth_signal(n, num_timestamps + lags, seed + 1, period=24.0)
    feats, targs = _lagged(sig, lags)
    return StaticTemporalDataset("Montevideo Bus (MB)", src, dst, n, feats, targs)


def load_pedalme(lags: int = 8, scale: float = 1.0, num_timestamps: int = 36, seed: int = 105) -> StaticTemporalDataset:
    """PedalMe stand-in (dense tiny delivery graph, weekly)."""
    n = _scaled(15, scale)
    e = min(_scaled(225, scale, lo=4), n * (n - 1))
    src, dst = gnp_edges(n, e, seed)  # dense delivery-zone graph
    sig = smooth_signal(n, num_timestamps + lags, seed + 1, period=12.0)
    feats, targs = _lagged(sig, lags)
    return StaticTemporalDataset("PedalMe (PM)", src, dst, n, feats, targs)


#: name -> loader, in Table II order
STATIC_DATASETS = {
    "WVM": load_wikimaths,
    "WO": load_windmill_output,
    "HC": load_hungary_chickenpox,
    "MB": load_montevideo_bus,
    "PM": load_pedalme,
}
