"""Dataset serialization: save/load the synthetic datasets as ``.npz``.

Generating the large dynamic stand-ins (discretization included) can take
seconds at big scales; freezing a dataset to disk makes benchmark sweeps
and downstream experiments reproducible byte-for-byte without re-running
the generators.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.dataset.signal import DynamicTemporalDataset, StaticTemporalDataset
from repro.graph.dtdg import DTDG

__all__ = ["save_dataset", "load_dataset"]

_META = "__dataset_meta__"


def save_dataset(path: str | pathlib.Path, dataset: StaticTemporalDataset | DynamicTemporalDataset) -> pathlib.Path:
    """Write a dataset to ``path`` (.npz); returns the path written."""
    path = pathlib.Path(path)
    arrays: dict[str, np.ndarray] = {}
    if isinstance(dataset, StaticTemporalDataset):
        meta = {
            "kind": "static",
            "name": dataset.name,
            "num_nodes": dataset.num_nodes,
            "num_timestamps": dataset.num_timestamps,
        }
        arrays["src"] = dataset.src
        arrays["dst"] = dataset.dst
        for t, (f, y) in enumerate(zip(dataset.features, dataset.targets)):
            arrays[f"x/{t}"] = f
            arrays[f"y/{t}"] = y
    elif isinstance(dataset, DynamicTemporalDataset):
        meta = {
            "kind": "dynamic",
            "name": dataset.name,
            "num_nodes": dataset.num_nodes,
            "num_timestamps": dataset.num_timestamps,
        }
        for t in range(dataset.num_timestamps):
            s, d = dataset.dtdg.snapshot_edges(t)
            arrays[f"src/{t}"] = s
            arrays[f"dst/{t}"] = d
            arrays[f"x/{t}"] = dataset.features[t]
    else:
        raise TypeError(f"cannot serialize {type(dataset).__name__}")
    arrays[_META] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_dataset(path: str | pathlib.Path) -> StaticTemporalDataset | DynamicTemporalDataset:
    """Load a dataset saved by :func:`save_dataset`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as data:
        meta = json.loads(bytes(data[_META]).decode())
        T = meta["num_timestamps"]
        if meta["kind"] == "static":
            features = [data[f"x/{t}"] for t in range(T)]
            targets = [data[f"y/{t}"] for t in range(T)]
            return StaticTemporalDataset(
                meta["name"], data["src"], data["dst"], meta["num_nodes"], features, targets
            )
        snaps = [(data[f"src/{t}"], data[f"dst/{t}"]) for t in range(T)]
        features = [data[f"x/{t}"] for t in range(T)]
        return DynamicTemporalDataset(meta["name"], DTDG(snaps, meta["num_nodes"]), features)
