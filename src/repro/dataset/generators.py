"""Seeded synthetic graph and signal generators.

All generators are deterministic given their seed, vectorized, and sized by
the target statistics of the dataset they stand in for.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gnp_edges", "powerlaw_edges", "sbm_edges", "smooth_signal", "temporal_edge_stream"]


def _dedupe(src: np.ndarray, dst: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    keys = src.astype(np.int64) * (dst.max(initial=0) + np.int64(1) + src.max(initial=0)) + dst
    _, idx = np.unique(keys, return_index=True)
    idx.sort()
    return src[idx], dst[idx]


def gnp_edges(num_nodes: int, num_edges: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """~uniform random directed simple edges (Erdős–Rényi flavour)."""
    rng = np.random.default_rng(seed)
    src_parts, dst_parts, have = [], [], 0
    while have < num_edges:
        want = int((num_edges - have) * 1.3) + 16
        s = rng.integers(0, num_nodes, want)
        d = rng.integers(0, num_nodes, want)
        keep = s != d
        src_parts.append(s[keep])
        dst_parts.append(d[keep])
        s_all = np.concatenate(src_parts)
        d_all = np.concatenate(dst_parts)
        s_all, d_all = _dedupe(s_all, d_all)
        src_parts, dst_parts = [s_all], [d_all]
        have = len(s_all)
    return src_parts[0][:num_edges], dst_parts[0][:num_edges]


def powerlaw_edges(
    num_nodes: int, num_edges: int, seed: int, exponent: float = 1.2
) -> tuple[np.ndarray, np.ndarray]:
    """Preferential-attachment-flavoured edges: endpoint popularity follows
    a Zipf-like law, matching the heavy-tailed degree distributions of the
    SNAP interaction networks."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    probs = ranks**-exponent
    cdf = np.cumsum(probs / probs.sum())
    perm = rng.permutation(num_nodes)  # decorrelate popularity from id
    src_parts, dst_parts, have = [], [], 0
    while have < num_edges:
        want = int((num_edges - have) * 1.5) + 16
        # inverse-CDF sampling: much faster than rng.choice with p=
        s = perm[np.searchsorted(cdf, rng.random(want))]
        d = perm[np.searchsorted(cdf, rng.random(want))]
        keep = s != d
        src_parts.append(s[keep])
        dst_parts.append(d[keep])
        s_all, d_all = _dedupe(np.concatenate(src_parts), np.concatenate(dst_parts))
        src_parts, dst_parts = [s_all], [d_all]
        have = len(s_all)
    return src_parts[0][:num_edges], dst_parts[0][:num_edges]


def sbm_edges(
    num_nodes: int,
    num_communities: int,
    p_in: float,
    p_out: float,
    seed: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stochastic block model: planted communities for node-classification
    tests.  Returns ``(src, dst, labels)`` with directed simple edges."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_communities, num_nodes)
    # vectorized Bernoulli over all ordered pairs (fine for test-scale N)
    same = labels[:, None] == labels[None, :]
    probs = np.where(same, p_in, p_out)
    np.fill_diagonal(probs, 0.0)
    adj = rng.random((num_nodes, num_nodes)) < probs
    src, dst = np.nonzero(adj)
    return src.astype(np.int64), dst.astype(np.int64), labels.astype(np.int64)


def smooth_signal(
    num_nodes: int,
    num_timestamps: int,
    seed: int,
    period: float = 24.0,
    noise: float = 0.2,
) -> np.ndarray:
    """``(T, N)`` AR(1)-plus-seasonality node signal (traffic/epidemic-like:
    smooth in time, heterogeneous across nodes, standardized)."""
    rng = np.random.default_rng(seed)
    t = np.arange(num_timestamps, dtype=np.float64)[:, None]
    phase = rng.uniform(0, 2 * np.pi, num_nodes)[None, :]
    amp = rng.uniform(0.5, 1.5, num_nodes)[None, :]
    seasonal = amp * np.sin(2 * np.pi * t / period + phase)
    ar = np.zeros((num_timestamps, num_nodes))
    shocks = rng.standard_normal((num_timestamps, num_nodes)) * noise
    for i in range(1, num_timestamps):
        ar[i] = 0.9 * ar[i - 1] + shocks[i]
    signal = seasonal + ar
    signal -= signal.mean(axis=0, keepdims=True)
    std = signal.std(axis=0, keepdims=True)
    signal /= np.where(std > 1e-9, std, 1.0)
    return signal.astype(np.float32)


def temporal_edge_stream(
    num_nodes: int,
    num_events: int,
    seed: int,
    exponent: float = 1.1,
    repeat_prob: float = 0.3,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A timestamped interaction stream ``(src, dst, t)`` like the SNAP
    temporal networks: heavy-tailed endpoint popularity with bursty repeats
    (a fraction of events re-fire recent pairs, as reply threads do)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, num_nodes + 1, dtype=np.float64)
    probs = ranks**-exponent
    cdf = np.cumsum(probs / probs.sum())
    perm = rng.permutation(num_nodes)
    src = perm[np.searchsorted(cdf, rng.random(num_events))].astype(np.int64)
    dst = perm[np.searchsorted(cdf, rng.random(num_events))].astype(np.int64)
    # bursty repeats: some events copy a random earlier event's pair
    repeat = rng.random(num_events) < repeat_prob
    repeat[0] = False
    back = np.maximum(0, np.arange(num_events) - rng.integers(1, 1000, num_events))
    src = np.where(repeat, src[back], src)
    dst = np.where(repeat, dst[back], dst)
    self_loop = src == dst
    dst[self_loop] = (dst[self_loop] + 1) % num_nodes
    times = np.sort(rng.integers(0, num_events * 10, num_events)).astype(np.int64)
    return src, dst, times
