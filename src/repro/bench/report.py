"""Paper-style ASCII rendering of benchmark results."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_table",
    "format_phase_breakdown",
    "format_reuse_counters",
    "format_span_aggregates",
    "fig9_rows",
    "format_fig9_table",
    "ascii_series",
    "improvement",
]


def format_table(rows: Sequence[Mapping], headers: Sequence[str] | None = None, title: str = "") -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)"
    headers = list(headers or rows[0].keys())
    cells = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [max(len(h), *(len(row[i]) for row in cells)) for i, h in enumerate(headers)]
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def format_phase_breakdown(
    phase_seconds: Mapping[str, float], title: str = "Phase breakdown"
) -> str:
    """Render a profiler's per-phase seconds as a share table.

    Pairs with :meth:`repro.device.profiler.Profiler.phase_seconds`; the
    ``compile`` row shows the one-time plan-compilation cost amortized by
    the plan cache (zero when every plan was already warm).
    """
    total = sum(phase_seconds.values())
    rows = [
        {
            "phase": name,
            "seconds": round(seconds, 5),
            "share": f"{100 * seconds / total:.1f}%" if total > 0 else "-",
        }
        for name, seconds in phase_seconds.items()
    ]
    return format_table(rows, title=title)


def format_reuse_counters(
    counters: Mapping[str, int], title: str = "Snapshot reuse"
) -> str:
    """Render the profiler's reuse counters with hit rates.

    Pairs with :meth:`repro.device.profiler.Profiler.counters`; the
    ``csr_cache`` row shows how many snapshot positionings were served from
    the ``(timestamp, version)`` CSR cache instead of re-running Algorithm 3,
    the ``ctx_cache`` row the executor-level GraphContext reuse, and
    ``noop_updates_skipped`` the empty update batches that never dirtied the
    snapshot at all.
    """
    def rate(hits: int, misses: int) -> str:
        total = hits + misses
        return f"{100 * hits / total:.1f}%" if total else "-"

    rows = [
        {
            "cache": "csr_cache",
            "hits": counters.get("csr_cache_hits", 0),
            "misses": counters.get("csr_cache_misses", 0),
            "hit_rate": rate(
                counters.get("csr_cache_hits", 0), counters.get("csr_cache_misses", 0)
            ),
        },
        {
            "cache": "ctx_cache",
            "hits": counters.get("ctx_cache_hits", 0),
            "misses": counters.get("ctx_cache_misses", 0),
            "hit_rate": rate(
                counters.get("ctx_cache_hits", 0), counters.get("ctx_cache_misses", 0)
            ),
        },
    ]
    table = format_table(rows, title=title)
    return table + f"\nnoop updates skipped: {counters.get('noop_updates_skipped', 0)}"


def format_span_aggregates(tracer, title: str = "Span aggregates") -> str:
    """Render a tracer's per-name inclusive times as a call-count table.

    Pairs with :meth:`repro.obs.tracer.Tracer.aggregate_by_name`; the
    complementary per-category *self*-time view is what
    :func:`format_phase_breakdown` renders when fed
    :meth:`~repro.obs.tracer.Tracer.aggregate_by_cat`.
    """
    rows = [
        {
            "span": name,
            "calls": info["calls"],
            "seconds": round(info["seconds"], 5),
            "mean_us": round(1e6 * info["seconds"] / info["calls"], 1),
        }
        for name, info in sorted(
            tracer.aggregate_by_name().items(), key=lambda kv: -kv[1]["seconds"]
        )
    ]
    return format_table(rows, title=title)


def fig9_rows(results: Sequence) -> list[dict]:
    """Figure 9 table rows from a list of :class:`RunResult`.

    The GNN vs graph-update split comes from one code path —
    ``RunResult.time_split()``, i.e. the tracer's per-category span
    self-time aggregate for traced runs — rather than a second,
    separately-maintained summation of profiler phases.

    When any run carries an explicit execution-engine selection the rows
    gain an ``engine`` column (plus the compiled tier's fusion hit rate),
    so engine-ablation tables stay self-describing while default runs
    keep the historical column set.
    """
    with_engine = any(getattr(r, "engine", "") for r in results)
    rows = []
    for r in results:
        gnn, upd = r.time_split()
        total = gnn + upd
        row: dict = {
            "dataset": r.dataset,
            "F": r.params.get("F", ""),
            "gnn_%": round(100 * gnn / total, 1) if total > 0 else 0.0,
            "update_%": round(100 * upd / total, 1) if total > 0 else 0.0,
            # One-time plan compilation relative to all profiled compute;
            # 0 when the process-wide plan cache was already warm.
            "compile_%": round(100 * r.compile_fraction, 1),
            # Snapshot-reuse counters: positionings served from either
            # reuse level (executor context or (timestamp, version) CSR
            # cache) vs fully rebuilt, and empty update batches that
            # never dirtied the snapshot.
            "reuse_%": round(100 * r.reuse_rate, 1),
            "noop_skipped": r.noop_updates_skipped,
            # Pipelined prefetch: staleness bound, staged-snapshot hit rate,
            # and main-thread seconds stalled behind an in-flight build
            # (all trivial for pipeline=0 runs).
            "pipeline": getattr(r, "pipeline", 0),
            "prefetch_%": round(100 * getattr(r, "prefetch_hit_rate", 0.0), 1),
            "prefetch_wait_s": round(getattr(r, "prefetch_wait_seconds", 0.0), 5),
        }
        if with_engine:
            row["engine"] = getattr(r, "engine", "") or "kernel"
            fh = getattr(r, "compiled_fusion_hits", 0)
            fm = getattr(r, "compiled_fusion_misses", 0)
            row["fusion_%"] = round(100 * fh / (fh + fm), 1) if fh + fm else 0.0
        rows.append(row)
    return rows


def format_fig9_table(results: Sequence, title: str | None = None) -> str:
    """Render :func:`fig9_rows` as the paper's Figure 9 breakup table."""
    return format_table(
        fig9_rows(results),
        title=title
        or "Figure 9: % of total time in GNN processing vs graph updates (STGraph-GPMA)",
    )


def ascii_series(
    series: Mapping[str, Sequence[tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 12,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """A minimal multi-series scatter/line chart in ASCII.

    Each series gets a marker; points are binned onto a width×height grid.
    Good enough to see orderings and crossovers — the properties the paper's
    figures communicate.
    """
    markers = "*o+x#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers):
        for x, y in pts:
            col = int((x - x0) / xspan * (width - 1))
            row = height - 1 - int((y - y0) / yspan * (height - 1))
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} [{y0:.4g} .. {y1:.4g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} [{x0:.4g} .. {x1:.4g}]")
    for (name, _), marker in zip(series.items(), markers):
        lines.append(f"  {marker} = {name}")
    return "\n".join(lines)


def improvement(baseline: float, ours: float) -> float:
    """Paper-style improvement factor: baseline / ours (>1 means we win)."""
    return baseline / ours if ours > 0 else float("inf")
