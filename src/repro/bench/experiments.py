"""One runner per table/figure of the paper's evaluation (§VII).

Every function returns ``(rows, rendered_text)``; the benchmark suite calls
them at a small default scale (CI-friendly) and ``benchmarks/run_all.py``
regenerates EXPERIMENTS.md with whatever scale the environment requests:

* ``REPRO_BENCH_STATIC_SCALE``  (default 0.3)
* ``REPRO_BENCH_DYNAMIC_SCALE`` (default 0.02)
* ``REPRO_BENCH_EPOCHS``        (default 4; the paper uses 100)
* ``REPRO_BENCH_PIPELINE``      (default 0; prefetch staleness for the
  GPMA cells of the DTDG figures — numerics are unchanged, only wall
  clock and the prefetch counters move)
* ``REPRO_BENCH_ENGINE``        (default unset; execution engine for the
  STGraph cells — "kernel", "interpreter", or "compiled".  Engines are
  bitwise-identical, so again only wall clock moves; ``repro bench
  --engine compiled`` sets this)

Scales multiply Table II's node/edge counts; the paper's qualitative
claims (orderings, crossovers, slopes) are stable across scales — the
benchmark suite asserts them at the small scale.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.bench.measure import RunResult, run_dynamic_experiment, run_static_experiment
from repro.bench.report import ascii_series, format_fig9_table, format_table, improvement
from repro.dataset import DYNAMIC_DATASETS, STATIC_DATASETS
from repro.obs.tracer import Tracer

__all__ = [
    "static_scale",
    "dynamic_scale",
    "bench_epochs",
    "bench_pipeline",
    "bench_engine",
    "table1_capabilities",
    "table2_datasets",
    "fig5_static_time",
    "fig6_static_memory",
    "fig7_dtdg_time",
    "fig8_dtdg_memory",
    "fig9_time_breakup",
    "table3_summary",
]


def static_scale() -> float:
    """Static-dataset scale from REPRO_BENCH_STATIC_SCALE (default 0.3)."""
    return float(os.environ.get("REPRO_BENCH_STATIC_SCALE", "0.3"))


def dynamic_scale() -> float:
    """Dynamic-dataset scale from REPRO_BENCH_DYNAMIC_SCALE (default 0.02)."""
    return float(os.environ.get("REPRO_BENCH_DYNAMIC_SCALE", "0.02"))


def bench_epochs() -> int:
    """Epochs per measured run from REPRO_BENCH_EPOCHS (default 4; paper uses 100)."""
    return int(os.environ.get("REPRO_BENCH_EPOCHS", "4"))


def bench_pipeline() -> int:
    """Prefetch staleness for GPMA cells from REPRO_BENCH_PIPELINE (default 0)."""
    return int(os.environ.get("REPRO_BENCH_PIPELINE", "0"))


def bench_engine() -> str | None:
    """Execution engine for STGraph cells from REPRO_BENCH_ENGINE (default None)."""
    name = os.environ.get("REPRO_BENCH_ENGINE", "").strip()
    return name or None


# ---------------------------------------------------------------------------
# Table I — library capability matrix (documentation table)
# ---------------------------------------------------------------------------
def table1_capabilities() -> tuple[list[dict], str]:
    """Table I: the library capability matrix."""
    rows = [
        {"library": "PyTorch Geometric", "backend": "PyTorch", "static": "yes", "temporal": "no"},
        {"library": "DGL", "backend": "Agnostic", "static": "yes", "temporal": "no"},
        {"library": "GraphNets", "backend": "TensorFlow", "static": "yes", "temporal": "no"},
        {"library": "Spektral", "backend": "TensorFlow", "static": "yes", "temporal": "no"},
        {"library": "Seastar", "backend": "Agnostic", "static": "yes", "temporal": "no"},
        {"library": "PyTorch Geometric Temporal", "backend": "PyTorch", "static": "yes", "temporal": "yes"},
        {"library": "STGraph (this reproduction)", "backend": "Agnostic", "static": "yes", "temporal": "yes"},
    ]
    return rows, format_table(rows, title="Table I: Deep Learning Libraries on Graphs")


# ---------------------------------------------------------------------------
# Table II — dataset summary
# ---------------------------------------------------------------------------
def table2_datasets(
    static_kwargs: dict | None = None, dynamic_kwargs: dict | None = None
) -> tuple[list[dict], str]:
    """Table II: summary rows for all ten dataset stand-ins."""
    rows = []
    skw = {"scale": static_scale(), "num_timestamps": 20, **(static_kwargs or {})}
    dkw = {"scale": dynamic_scale(), "max_snapshots": 8, **(dynamic_kwargs or {})}
    for loader in STATIC_DATASETS.values():
        rows.append(loader(**skw).summary_row())
    for loader in DYNAMIC_DATASETS.values():
        rows.append(loader(**dkw).summary_row())
    return rows, format_table(rows, title="Table II: Benchmarking Datasets (synthetic stand-ins)")


# ---------------------------------------------------------------------------
# Figure 5 — per-epoch time vs feature size, static-temporal
# ---------------------------------------------------------------------------
def fig5_static_time(
    feature_sizes: tuple[int, ...] = (8, 16, 32),
    datasets: dict[str, Callable] | None = None,
    num_timestamps: int = 15,
    epochs: int | None = None,
    scale: float | None = None,
) -> tuple[list[RunResult], str]:
    """Figure 5: per-epoch time vs feature size, static-temporal, STGraph vs PyG-T."""
    datasets = datasets or STATIC_DATASETS
    epochs = epochs or bench_epochs()
    scale = static_scale() if scale is None else scale
    results: list[RunResult] = []
    blocks: list[str] = []
    for name, loader in datasets.items():
        series: dict[str, list[tuple[float, float]]] = {"STGraph": [], "PyG-T": []}
        for fs in feature_sizes:
            for system, label in (("stgraph", "STGraph"), ("pygt", "PyG-T")):
                r = run_static_experiment(
                    system, loader, feature_size=fs, scale=scale,
                    num_timestamps=num_timestamps, epochs=epochs,
                    engine=bench_engine(),
                )
                results.append(r)
                series[label].append((fs, r.per_epoch_seconds))
        blocks.append(ascii_series(series, title=f"Figure 5 [{name}]: per-epoch time vs feature size",
                                   xlabel="feature size", ylabel="s/epoch"))
    return results, "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Figure 6 — memory vs sequence length, static-temporal, feature size 8
# ---------------------------------------------------------------------------
def fig6_static_memory(
    sequence_lengths: tuple[int, ...] = (5, 10, 20),
    datasets: dict[str, Callable] | None = None,
    num_timestamps: int = 20,
    epochs: int | None = None,
    scale: float | None = None,
) -> tuple[list[RunResult], str]:
    """Figure 6: peak memory vs sequence length at feature size 8."""
    datasets = datasets or STATIC_DATASETS
    epochs = epochs or bench_epochs()
    scale = static_scale() if scale is None else scale
    results: list[RunResult] = []
    blocks: list[str] = []
    for name, loader in datasets.items():
        series: dict[str, list[tuple[float, float]]] = {"STGraph": [], "PyG-T": []}
        for seq in sequence_lengths:
            for system, label in (("stgraph", "STGraph"), ("pygt", "PyG-T")):
                r = run_static_experiment(
                    system, loader, feature_size=8, scale=scale,
                    num_timestamps=num_timestamps, sequence_length=seq, epochs=epochs,
                    engine=bench_engine(),
                )
                results.append(r)
                series[label].append((seq, r.peak_memory_bytes / 1e6))
        blocks.append(ascii_series(series, title=f"Figure 6 [{name}]: peak memory vs sequence length (F=8)",
                                   xlabel="sequence length", ylabel="MB"))
    return results, "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Figure 7 — per-epoch time vs feature size, DTDG, 5% change
# ---------------------------------------------------------------------------
_DTDG_SYSTEMS = (("naive", "STGraph-Naive"), ("gpma", "STGraph-GPMA"), ("pygt", "PyG-T"))


def fig7_dtdg_time(
    feature_sizes: tuple[int, ...] = (8, 32, 64),
    datasets: dict[str, Callable] | None = None,
    epochs: int | None = None,
    percent_change: float = 5.0,
    scale: float | None = None,
) -> tuple[list[RunResult], str]:
    """Figure 7: per-epoch time vs feature size for the three DTDG systems."""
    datasets = datasets or DYNAMIC_DATASETS
    epochs = epochs or bench_epochs()
    scale = dynamic_scale() if scale is None else scale
    results: list[RunResult] = []
    blocks: list[str] = []
    for name, loader in datasets.items():
        series: dict[str, list[tuple[float, float]]] = {label: [] for _, label in _DTDG_SYSTEMS}
        for fs in feature_sizes:
            for system, label in _DTDG_SYSTEMS:
                r = run_dynamic_experiment(
                    system, loader, feature_size=fs, percent_change=percent_change,
                    scale=scale, epochs=epochs,
                    pipeline=bench_pipeline() if system == "gpma" else 0,
                    engine=bench_engine(),
                )
                results.append(r)
                series[label].append((fs, r.per_epoch_seconds))
        blocks.append(ascii_series(series, title=f"Figure 7 [{name}]: per-epoch time vs feature size (5% change)",
                                   xlabel="feature size", ylabel="s/epoch"))
    return results, "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Figure 8 — memory vs percent change, DTDG
# ---------------------------------------------------------------------------
def fig8_dtdg_memory(
    percent_changes: tuple[float, ...] = (1.0, 5.0, 10.0),
    datasets: dict[str, Callable] | None = None,
    epochs: int | None = None,
    feature_size: int = 8,
    scale: float | None = None,
) -> tuple[list[RunResult], str]:
    """Memory vs percent change.  ``max_snapshots=None``: a fixed stream
    discretized at a smaller percent change yields proportionally more
    snapshots, which is exactly the redundancy the figure measures."""
    datasets = datasets or DYNAMIC_DATASETS
    epochs = epochs or bench_epochs()
    scale = dynamic_scale() if scale is None else scale
    results: list[RunResult] = []
    blocks: list[str] = []
    for name, loader in datasets.items():
        series: dict[str, list[tuple[float, float]]] = {label: [] for _, label in _DTDG_SYSTEMS}
        for pct in percent_changes:
            for system, label in _DTDG_SYSTEMS:
                r = run_dynamic_experiment(
                    system, loader, feature_size=feature_size, percent_change=pct,
                    scale=scale, epochs=epochs, max_snapshots=None,
                    engine=bench_engine(),
                )
                results.append(r)
                series[label].append((pct, r.peak_memory_bytes / 1e6))
        blocks.append(ascii_series(series, title=f"Figure 8 [{name}]: peak memory vs % change between snapshots",
                                   xlabel="% change", ylabel="MB"))
    return results, "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Figure 9 — GNN vs graph-update time split
# ---------------------------------------------------------------------------
def fig9_time_breakup(
    feature_sizes: tuple[int, ...] = (8, 32, 64),
    datasets: dict[str, Callable] | None = None,
    epochs: int | None = None,
    scale: float | None = None,
) -> tuple[list[RunResult], str]:
    """Figure 9: GNN vs graph-update share of STGraph-GPMA's time.

    Each cell trains under an aggregation-only :class:`Tracer`
    (``keep_events=False``: no per-event retention) and the table is
    rendered by :func:`repro.bench.report.format_fig9_table` from the span
    self-time aggregates — the same attribution the Chrome trace of a
    ``--trace`` run shows, through one shared code path.
    """
    datasets = datasets or DYNAMIC_DATASETS
    epochs = epochs or bench_epochs()
    scale = dynamic_scale() if scale is None else scale
    results: list[RunResult] = []
    for name, loader in datasets.items():
        for fs in feature_sizes:
            r = run_dynamic_experiment(
                "gpma", loader, feature_size=fs, scale=scale, epochs=epochs,
                pipeline=bench_pipeline(),
                engine=bench_engine(),
                tracer=Tracer(name=f"fig9:{name}:F{fs}", keep_events=False),
            )
            results.append(r)
    return results, format_fig9_table(results)


# ---------------------------------------------------------------------------
# Scalability (extension): per-epoch time vs dataset scale
# ---------------------------------------------------------------------------
def scaling_experiment(
    scales: tuple[float, ...] = (0.01, 0.02, 0.04),
    loader: Callable | None = None,
    feature_size: int = 16,
    epochs: int | None = None,
) -> tuple[list[RunResult], str]:
    """Per-epoch time of the three DTDG systems as the dataset grows.

    Backs the paper's closing claim that "STGraph-GPMA is the more scalable
    alternative since it doesn't have the large pre-processing time of
    preparing CSRs and reverse-CSRs for snapshots at every timestamp": the
    Naive variant's preprocessing is included in its first measured epoch
    window here via the ``preprocess`` phase, reported separately.
    """
    loader = loader or DYNAMIC_DATASETS["sx-mathoverflow"]
    epochs = epochs or bench_epochs()
    results: list[RunResult] = []
    series: dict[str, list[tuple[float, float]]] = {label: [] for _, label in _DTDG_SYSTEMS}
    for scale in scales:
        for system, label in _DTDG_SYSTEMS:
            r = run_dynamic_experiment(
                system, loader, feature_size=feature_size, scale=scale, epochs=epochs,
            )
            results.append(r)
            r.params["scale"] = scale
            series[label].append((scale, r.per_epoch_seconds))
    return results, ascii_series(
        series,
        title="Scaling (extension): per-epoch time vs dataset scale (DTDG)",
        xlabel="scale", ylabel="s/epoch",
    )


# ---------------------------------------------------------------------------
# Table III — improvement summary
# ---------------------------------------------------------------------------
def table3_summary(
    static_results: list[RunResult],
    dynamic_time_results: list[RunResult],
    dynamic_mem_results: list[RunResult] | None = None,
) -> tuple[list[dict], str]:
    """Aggregate Figures 5-8 runs into the paper's max/avg improvement table.

    Improvements are PyG-T / variant per matching (dataset, params) cell.
    """
    dynamic_mem_results = dynamic_mem_results or dynamic_time_results

    def collect(results: list[RunResult], variant: str, metric: str) -> list[float]:
        base = {
            (r.dataset, tuple(sorted(r.params.items()))): getattr(r, metric)
            for r in results
            if r.system == "pygt"
        }
        ratios = []
        for r in results:
            if r.system != variant:
                continue
            key = (r.dataset, tuple(sorted(r.params.items())))
            if key in base:
                ratios.append(improvement(base[key], getattr(r, metric)))
        return ratios

    rows = []
    for metric, metric_name in (
        ("per_epoch_seconds", "Time/epoch"),
        ("peak_memory_bytes", "Memory"),
    ):
        row_max = {"metric": f"{metric_name} (max)"}
        row_avg = {"metric": f"{metric_name} (avg)"}
        for variant, col, results in (
            ("stgraph", "Static", static_results),
            ("naive", "Naive", dynamic_time_results if metric == "per_epoch_seconds" else dynamic_mem_results),
            ("gpma", "GPMA", dynamic_time_results if metric == "per_epoch_seconds" else dynamic_mem_results),
        ):
            ratios = collect(results, variant, metric)
            row_max[col] = f"{max(ratios):.2f}x" if ratios else "-"
            row_avg[col] = f"{sum(ratios)/len(ratios):.2f}x" if ratios else "-"
        rows.append(row_max)
        rows.append(row_avg)
    return rows, format_table(
        rows, title="Table III: Improvement of STGraph variants over PyG-T (this reproduction)"
    )
