"""Measured experiment runners.

``run_static_experiment`` / ``run_dynamic_experiment`` build the dataset,
model, and trainer for one (system, configuration) cell of a figure, run
the paper's training protocol (N epochs, first ``warmup`` ignored for
timing), and report:

* mean per-epoch wall time (Figures 5/7),
* peak device-resident bytes (Figures 6/8),
* GNN vs graph-update time split (Figure 9),
* final loss (the paper's "loss ... similar over all tests" check).

Every run executes inside a fresh :class:`~repro.device.Device` so
measurements never bleed across configurations, and both frameworks draw
identical initial weights (seeded initializer) so loss trajectories are
comparable.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Callable

from repro.device import Device, use_device
from repro.obs.tracer import Tracer, use_tracer
from repro.tensor import init

__all__ = ["RunResult", "run_static_experiment", "run_dynamic_experiment"]


@dataclass
class RunResult:
    """One measured (system, configuration) cell of a figure."""
    system: str
    dataset: str
    params: dict = field(default_factory=dict)
    per_epoch_seconds: float = 0.0
    peak_memory_bytes: int = 0
    final_loss: float = 0.0
    gnn_seconds: float = 0.0
    graph_update_seconds: float = 0.0
    compile_seconds: float = 0.0
    # Snapshot/context reuse counters (zero for systems without them).
    csr_cache_hits: int = 0
    csr_cache_misses: int = 0
    noop_updates_skipped: int = 0
    ctx_cache_hits: int = 0
    ctx_cache_misses: int = 0
    # Pipelined-prefetch effectiveness (all zero for pipeline=0 runs):
    # staged snapshots consumed / synchronous rebuilds while a scheduler was
    # attached / main-thread seconds stalled on an in-flight worker build.
    pipeline: int = 0
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_wait_seconds: float = 0.0
    # Execution-engine ablation: empty string = the executor default
    # (kernel).  The fusion counters move only under the compiled tier —
    # cross-timestamp reuse of the packed native graph (see
    # ``repro.compiler.native``).
    engine: str = ""
    compiled_fusion_hits: int = 0
    compiled_fusion_misses: int = 0
    #: per-category span self-seconds (``Tracer.aggregate_by_cat``) when the
    #: run executed under a tracer; empty otherwise.
    span_seconds: dict = field(default_factory=dict)

    def time_split(self) -> tuple[float, float]:
        """(gnn_seconds, graph_update_seconds) for the Figure 9 breakup.

        One code path: span aggregates when the run was traced — the same
        self-time attribution the Chrome trace shows — falling back to the
        profiler's phase timers for untraced runs.  The two agree (see
        ``tests/test_obs_tracing.py``'s consistency test) because the spans
        wrap exactly the profiler's ``gnn``/``graph_update`` phase regions.
        """
        if self.span_seconds:
            return (
                self.span_seconds.get("gnn", 0.0),
                self.span_seconds.get("graph_update", 0.0),
            )
        return self.gnn_seconds, self.graph_update_seconds

    @property
    def graph_update_fraction(self) -> float:
        """Share of profiled compute spent on graph updates (Figure 9's y-axis)."""
        gnn, upd = self.time_split()
        return upd / (gnn + upd) if gnn + upd > 0 else 0.0

    @property
    def compile_fraction(self) -> float:
        """One-time plan compilation relative to all profiled compute.

        Zero for runs whose plans were already warm in the process-wide
        plan cache — the compile-once/run-every-timestamp amortization.
        """
        denom = self.gnn_seconds + self.graph_update_seconds + self.compile_seconds
        return self.compile_seconds / denom if denom > 0 else 0.0

    @property
    def prefetch_hit_rate(self) -> float:
        """Fraction of prefetch-eligible builds served from staged snapshots."""
        denom = self.prefetch_hits + self.prefetch_misses
        return self.prefetch_hits / denom if denom > 0 else 0.0

    @property
    def csr_cache_hit_rate(self) -> float:
        """Fraction of CSR-level positionings served from the reuse cache."""
        denom = self.csr_cache_hits + self.csr_cache_misses
        return self.csr_cache_hits / denom if denom > 0 else 0.0

    @property
    def reuse_rate(self) -> float:
        """Fraction of temporal positionings that skipped the CSR rebuild.

        Each positioning ends one of three ways: an executor context hit
        (the CSRs are never consulted), a graph-level CSR cache hit, or a
        full rebuild.  A context miss triggers exactly one CSR-level event,
        so the three counters partition the positionings.
        """
        served = self.ctx_cache_hits + self.csr_cache_hits
        denom = served + self.csr_cache_misses
        return served / denom if denom > 0 else 0.0

    def row(self) -> dict:
        """Flat JSON-friendly dict for tables and CI tracking.

        Engine/fusion keys appear only for runs with an explicit engine
        selection, so default-engine rows keep their historical key set
        (the nightly differ compares rows key-by-key).
        """
        row = {
            "system": self.system,
            "dataset": self.dataset,
            **self.params,
            "epoch_s": round(self.per_epoch_seconds, 5),
            "peak_MB": round(self.peak_memory_bytes / 1e6, 3),
            "loss": round(self.final_loss, 4),
            "update_frac": round(self.graph_update_fraction, 3),
            "compile_s": round(self.compile_seconds, 5),
            "csr_hits": self.csr_cache_hits,
            "csr_misses": self.csr_cache_misses,
            "noop_skipped": self.noop_updates_skipped,
            "pipeline": self.pipeline,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_misses": self.prefetch_misses,
            "prefetch_wait_s": round(self.prefetch_wait_seconds, 5),
        }
        if self.engine:
            row["engine"] = self.engine
            row["fusion_hits"] = self.compiled_fusion_hits
            row["fusion_misses"] = self.compiled_fusion_misses
        return row


def _reuse_counters(device: Device) -> dict:
    """The profiler's snapshot/context reuse counters as RunResult kwargs."""
    p = device.profiler
    return {
        "csr_cache_hits": p.counter("csr_cache_hits"),
        "csr_cache_misses": p.counter("csr_cache_misses"),
        "noop_updates_skipped": p.counter("noop_updates_skipped"),
        "ctx_cache_hits": p.counter("ctx_cache_hits"),
        "ctx_cache_misses": p.counter("ctx_cache_misses"),
        "prefetch_hits": p.counter("prefetch_hits"),
        "prefetch_misses": p.counter("prefetch_misses"),
        "prefetch_wait_seconds": p.seconds("prefetch_wait"),
        "compiled_fusion_hits": p.counter("compiled_fusion_hits"),
        "compiled_fusion_misses": p.counter("compiled_fusion_misses"),
    }


def run_static_experiment(
    system: str,
    loader: Callable,
    feature_size: int = 8,
    hidden: int | None = None,
    sequence_length: int | None = None,
    num_timestamps: int = 30,
    scale: float = 1.0,
    epochs: int = 5,
    warmup: int = 1,
    weight_seed: int = 42,
    sort_by_degree: bool = True,
    tracer: Tracer | None = None,
    engine: str | None = None,
) -> RunResult:
    """One cell of Figure 5/6: ``system`` ∈ {"stgraph", "pygt"}.

    Passing ``tracer`` runs the whole training under it and fills
    :attr:`RunResult.span_seconds` with its per-category self-time aggregate.
    ``engine`` selects the STGraph execution engine ("kernel",
    "interpreter", "compiled"); ignored for the PyG-T baseline.  All
    engines are bitwise-identical, so only wall clock moves.
    """
    from repro.train.models import PyGTNodeRegressor, STGraphNodeRegressor
    from repro.train.trainer import BaselineTrainer, STGraphTrainer

    if system not in ("stgraph", "pygt"):
        raise ValueError(f"unknown static system {system!r}")
    # The paper's TGCN "default configuration" ties model width to the
    # feature size, so GNN processing cost scales with the Figure 5/7
    # x-axis; a fixed hidden width would flatten the sweeps.
    hidden = feature_size if hidden is None else hidden
    gc.collect()
    device = Device(name=f"bench:{system}")
    with use_device(device):
        ds = loader(lags=feature_size, scale=scale, num_timestamps=num_timestamps)
        init.set_seed(weight_seed)
        if system == "stgraph":
            model = STGraphNodeRegressor(feature_size, hidden)
            graph = ds.build_graph(sort_by_degree=sort_by_degree)
            trainer = STGraphTrainer(
                model, graph, sequence_length=sequence_length, engine=engine
            )
        else:
            model = PyGTNodeRegressor(feature_size, hidden)
            signal = ds.to_pygt_signal()
            trainer = BaselineTrainer(model, signal.edge_index, sequence_length=sequence_length)
        with use_tracer(tracer):
            losses = trainer.train(ds.features, ds.targets, epochs=epochs, warmup=warmup)
        return RunResult(
            system=system,
            dataset=ds.name,
            params={"F": feature_size, "seq": sequence_length or num_timestamps},
            engine=engine or "" if system == "stgraph" else "",
            per_epoch_seconds=trainer.mean_epoch_time,
            peak_memory_bytes=device.tracker.peak_bytes,
            final_loss=losses[-1],
            gnn_seconds=device.profiler.seconds("gnn"),
            graph_update_seconds=device.profiler.seconds("graph_update"),
            compile_seconds=device.profiler.seconds("compile"),
            span_seconds=dict(tracer.aggregate_by_cat()) if tracer is not None else {},
            **_reuse_counters(device),
        )


def run_dynamic_experiment(
    system: str,
    loader: Callable,
    feature_size: int = 8,
    hidden: int | None = None,
    sequence_length: int | None = 4,
    percent_change: float = 5.0,
    scale: float = 0.01,
    max_snapshots: int | None = 10,
    epochs: int = 5,
    warmup: int = 1,
    weight_seed: int = 42,
    samples_per_timestamp: int = 128,
    sort_by_degree: bool = True,
    gpma_cache: bool = True,
    csr_cache: bool = True,
    pipeline: int = 0,
    tracer: Tracer | None = None,
    engine: str | None = None,
) -> RunResult:
    """One cell of Figure 7/8/9: ``system`` ∈ {"naive", "gpma", "pygt"}.

    Passing ``tracer`` runs the whole training under it and fills
    :attr:`RunResult.span_seconds` with its per-category self-time aggregate.
    ``pipeline`` is the prefetch staleness bound (STGraph systems only;
    numerics are unchanged — only the wall-clock and the prefetch counters
    move).  ``engine`` selects the STGraph execution engine ("kernel",
    "interpreter", "compiled"); ignored for the PyG-T baseline.
    """
    from repro.train.models import PyGTLinkPredictor, STGraphLinkPredictor
    from repro.train.tasks import make_link_prediction_samples
    from repro.train.trainer import BaselineTrainer, STGraphTrainer

    if system not in ("naive", "gpma", "pygt"):
        raise ValueError(f"unknown dynamic system {system!r}")
    hidden = feature_size if hidden is None else hidden
    gc.collect()
    device = Device(name=f"bench:{system}")
    with use_device(device):
        ds = loader(
            scale=scale,
            percent_change=percent_change,
            feature_size=feature_size,
            max_snapshots=max_snapshots,
        )
        samples = make_link_prediction_samples(
            ds.dtdg, samples_per_timestamp=samples_per_timestamp, seed=weight_seed
        )
        init.set_seed(weight_seed)
        if system == "pygt":
            model = PyGTLinkPredictor(feature_size, hidden)
            signal = ds.to_pygt_signal()
            trainer = BaselineTrainer(
                model,
                signal.edge_indices,
                sequence_length=sequence_length,
                task="link_prediction",
                link_samples=samples,
            )
        else:
            model = STGraphLinkPredictor(feature_size, hidden)
            graph = (
                ds.build_naive(sort_by_degree=sort_by_degree)
                if system == "naive"
                else ds.build_gpma(
                    sort_by_degree=sort_by_degree,
                    enable_cache=gpma_cache,
                    enable_csr_cache=csr_cache,
                )
            )
            trainer = STGraphTrainer(
                model,
                graph,
                sequence_length=sequence_length,
                task="link_prediction",
                link_samples=samples,
                pipeline=pipeline,
                engine=engine,
            )
        with use_tracer(tracer):
            losses = trainer.train(ds.features, targets=None, epochs=epochs, warmup=warmup)
        return RunResult(
            system=system,
            dataset=ds.name,
            params={"F": feature_size, "pct": percent_change},
            pipeline=int(pipeline) if system != "pygt" else 0,
            engine=engine or "" if system != "pygt" else "",
            per_epoch_seconds=trainer.mean_epoch_time,
            peak_memory_bytes=device.tracker.peak_bytes,
            final_loss=losses[-1],
            gnn_seconds=device.profiler.seconds("gnn"),
            graph_update_seconds=device.profiler.seconds("graph_update"),
            compile_seconds=device.profiler.seconds("compile"),
            span_seconds=dict(tracer.aggregate_by_cat()) if tracer is not None else {},
            **_reuse_counters(device),
        )
