"""Training-run profiling: one call → a phase/stack/memory report.

Wraps any trainer in a fresh device and reports where the time went
(GNN kernels vs graph updates vs everything else), how deep the State and
Graph stacks ran, and the peak residency — the quickest way for a user to
see the paper's Figure 9 decomposition on *their* workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.report import format_table
from repro.device import Device, use_device

__all__ = ["ProfileReport", "profile_training"]


@dataclass
class ProfileReport:
    """Phase/stack/memory summary of one profiled training run."""
    epochs: int
    total_seconds: float
    gnn_seconds: float
    graph_update_seconds: float
    preprocess_seconds: float
    peak_memory_bytes: int
    state_stack_peak_depth: int
    state_stack_peak_bytes: int
    graph_stack_peak_depth: int
    kernel_launches: int
    final_loss: float
    compile_seconds: float = 0.0
    csr_cache_hits: int = 0
    csr_cache_misses: int = 0
    noop_updates_skipped: int = 0
    ctx_cache_hits: int = 0
    ctx_cache_misses: int = 0

    @property
    def other_seconds(self) -> float:
        """Wall time outside the compile/gnn/update/preprocess phases."""
        return max(
            0.0,
            self.total_seconds
            - self.compile_seconds
            - self.gnn_seconds
            - self.graph_update_seconds
            - self.preprocess_seconds,
        )

    def render(self) -> str:
        """ASCII table plus a one-line memory/stack summary."""
        def pct(x: float) -> str:
            return f"{100 * x / self.total_seconds:.1f}%" if self.total_seconds else "-"

        rows = [
            {"phase": "plan compilation", "seconds": round(self.compile_seconds, 4), "share": pct(self.compile_seconds)},
            {"phase": "gnn kernels", "seconds": round(self.gnn_seconds, 4), "share": pct(self.gnn_seconds)},
            {"phase": "graph updates", "seconds": round(self.graph_update_seconds, 4), "share": pct(self.graph_update_seconds)},
            {"phase": "preprocessing", "seconds": round(self.preprocess_seconds, 4), "share": pct(self.preprocess_seconds)},
            {"phase": "other (optimizer, losses, host)", "seconds": round(self.other_seconds, 4), "share": pct(self.other_seconds)},
        ]
        extra = (
            f"peak memory: {self.peak_memory_bytes / 1e6:.2f} MB | "
            f"kernel launches: {self.kernel_launches} | "
            f"state stack: depth {self.state_stack_peak_depth}, "
            f"{self.state_stack_peak_bytes / 1e3:.1f} KB peak | "
            f"graph stack: depth {self.graph_stack_peak_depth} | "
            f"final loss: {self.final_loss:.4f}"
        )
        reuse = (
            f"snapshot reuse: csr cache {self.csr_cache_hits} hit / "
            f"{self.csr_cache_misses} miss | ctx cache {self.ctx_cache_hits} hit / "
            f"{self.ctx_cache_misses} miss | "
            f"noop updates skipped: {self.noop_updates_skipped}"
        )
        return (
            format_table(rows, title=f"Profile ({self.epochs} epochs, {self.total_seconds:.3f}s)")
            + "\n" + extra + "\n" + reuse
        )


def profile_training(build_trainer, features, targets=None, epochs: int = 3) -> ProfileReport:
    """Profile a training run on a fresh device.

    ``build_trainer()`` must construct and return an
    :class:`~repro.train.trainer.STGraphTrainer` (built *inside* the call so
    all allocations land on the profiled device).
    """
    import time

    device = Device(name="profile")
    with use_device(device):
        # The timing window includes trainer construction so one-time plan
        # compilation (a cold plan cache) is part of the profiled total.
        start = time.perf_counter()
        trainer = build_trainer()
        loss = 0.0
        for _ in range(epochs):
            loss = trainer.train_epoch(features, targets)
        total = time.perf_counter() - start
        stats = trainer.executor.stats()
        return ProfileReport(
            epochs=epochs,
            total_seconds=total,
            gnn_seconds=device.profiler.seconds("gnn"),
            graph_update_seconds=device.profiler.seconds("graph_update"),
            preprocess_seconds=device.profiler.seconds("preprocess"),
            peak_memory_bytes=device.tracker.peak_bytes,
            state_stack_peak_depth=stats["state_stack_peak_depth"],
            state_stack_peak_bytes=stats["state_stack_peak_bytes"],
            graph_stack_peak_depth=stats["graph_stack_peak_depth"],
            kernel_launches=device.launcher.launch_count,
            final_loss=loss,
            compile_seconds=device.profiler.seconds("compile"),
            csr_cache_hits=device.profiler.counter("csr_cache_hits"),
            csr_cache_misses=device.profiler.counter("csr_cache_misses"),
            noop_updates_skipped=device.profiler.counter("noop_updates_skipped"),
            ctx_cache_hits=device.profiler.counter("ctx_cache_hits"),
            ctx_cache_misses=device.profiler.counter("ctx_cache_misses"),
        )
