"""Benchmark harness: experiment runners for every table and figure.

Each experiment of §VII has a runner in :mod:`repro.bench.experiments`
returning structured rows; :mod:`repro.bench.report` renders paper-style
ASCII tables and series.  Every measured configuration runs on a fresh
simulated device so peak-memory and phase-time accounting are isolated.
"""

from repro.bench.measure import RunResult, run_dynamic_experiment, run_static_experiment
from repro.bench.profile import ProfileReport, profile_training
from repro.bench.report import ascii_series, format_phase_breakdown, format_table, improvement

__all__ = [
    "RunResult",
    "run_static_experiment",
    "run_dynamic_experiment",
    "ProfileReport",
    "profile_training",
    "format_table",
    "format_phase_breakdown",
    "ascii_series",
    "improvement",
]
