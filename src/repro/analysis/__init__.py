"""Concurrency correctness toolkit: static lock-discipline analysis + a
runtime lock-order sanitizer.

Two cooperating halves (see ``docs/ANALYSIS.md``):

* :mod:`repro.analysis.lockcheck` / :mod:`repro.analysis.callgraph` — an
  AST-based analyzer over ``src/repro`` emitting stable ``STG2xx``
  diagnostics through the compiler's :class:`~repro.compiler.diagnostics.
  LintReport` machinery, gated by ``repro lint --concurrency`` against the
  committed ``BASELINE.json``.
* :mod:`repro.analysis.sanitizer` — instrumented lock factories
  (``REPRO_TSAN=1`` / :func:`use_sanitizer`) that catch lock-order cycles
  and wait-while-holding violations live, turning the concurrency test
  suite into a dynamic race harness.

This ``__init__`` re-exports only the sanitizer: the static half imports
the compiler package, and modules as low in the import graph as
``repro.device.allocator`` create locks through the factories — eagerly
importing lockcheck here would cycle.  Import the static API explicitly
(``from repro.analysis import lockcheck``) or via the lazy attributes.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    LockOrderViolation,
    NullSanitizer,
    current_sanitizer,
    new_condition,
    new_lock,
    new_rlock,
    use_sanitizer,
)

__all__ = [
    "LockOrderSanitizer",
    "LockOrderViolation",
    "NullSanitizer",
    "current_sanitizer",
    "new_condition",
    "new_lock",
    "new_rlock",
    "use_sanitizer",
    "analyze_path",
    "analyze_source",
]

_LAZY = {"analyze_path", "analyze_source", "analyze_model", "load_baseline",
         "apply_baseline", "write_baseline", "default_baseline_path"}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from repro.analysis import lockcheck

        return getattr(lockcheck, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
