"""AST model of lock usage for the lock-discipline analyzer.

This module turns Python source into the facts :mod:`repro.analysis.lockcheck`
checks: which classes own which lock attributes, which methods acquire
which locks (``with``-blocks and bare ``.acquire()`` calls), what every
method writes / calls / blocks on and what was held at that point, and a
name-resolved call graph good enough to propagate "may acquire" and "may
block" summaries across method boundaries.

Resolution is deliberately conservative.  A receiver is resolved only when

* it is ``self`` (same class),
* it is ``self.<attr>`` with a constructor assignment or annotation that
  names an analyzed class,
* it is a local variable assigned from an analyzed class constructor, or
* the method name is defined by **exactly one** analyzed class (unique-name
  fallback — precise for framework-specific names like ``mark_inflight``,
  skipped for ubiquitous ones like ``get``).

Unresolved calls contribute nothing — the analysis under-approximates
rather than invent lock-order edges that would produce phantom cycles.

Suppression: a line carrying ``# lockcheck: ok(<reason>)`` suppresses any
finding anchored at that line; the reason string is preserved so reports
can show *why* a site is exempt.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Acquire",
    "Blocking",
    "CallEvent",
    "ClassModel",
    "CodeModel",
    "LockSite",
    "MethodModel",
    "Write",
    "build_model",
    "build_model_from_sources",
]

#: ``threading.X`` / sanitizer-factory constructor names -> lock kind.
_LOCK_CTORS = {
    "Lock": "lock",
    "RLock": "rlock",
    "Condition": "condition",
    "new_lock": "lock",
    "new_rlock": "rlock",
    "new_condition": "condition",
}

#: Method/attribute names treated as primitively blocking when called.
_BLOCKING_ATTRS = {"sleep", "join", "wait", "wait_for", "serve_forever",
                   "recv", "send", "sendall", "accept", "connect",
                   "check_call", "check_output", "urlopen", "makedirs"}
#: Bare-name calls treated as primitively blocking.
_BLOCKING_NAMES = {"open", "urlopen"}
#: ``.join`` receivers that are string/path machinery, not threads.
_JOIN_EXEMPT_RECEIVERS = {"path", "os.path", "sep"}

_SUPPRESS_RE = re.compile(r"#\s*lockcheck:\s*ok\((?P<reason>[^)]*)\)")


@dataclass(frozen=True)
class LockSite:
    """One lock attribute (``Class._lock``) or module-level lock."""

    key: str          #: canonical identity, e.g. ``"SnapshotCache._lock"``
    kind: str         #: ``lock`` | ``rlock`` | ``condition``
    module: str
    lineno: int
    alias_of: str | None = None  #: condition built over an existing lock


@dataclass(frozen=True)
class Acquire:
    """One acquisition event (``with lock:`` or bare ``lock.acquire()``)."""

    lock: str                 #: canonical lock key (conditions canonicalized)
    held: tuple[str, ...]     #: locks held at this point
    lineno: int
    bare: bool                #: True for ``.acquire()`` outside a ``with``
    safe: bool = True         #: bare only: release guaranteed via finally


@dataclass(frozen=True)
class Write:
    """One ``self.<attr>`` write (assignment / augassign / item-store)."""

    attr: str
    held: tuple[str, ...]
    lineno: int
    suppressed: str | None


@dataclass(frozen=True)
class CallEvent:
    """One call made by a method, with what was held when it was made."""

    name: str
    receiver: str | None       #: ``"self"``, ``"self.attr"``, a local, or None
    held: tuple[str, ...]
    lineno: int
    suppressed: str | None


@dataclass(frozen=True)
class Blocking:
    """One primitively blocking call site."""

    what: str                  #: rendered callee, e.g. ``"time.sleep"``
    held: tuple[str, ...]
    lineno: int
    suppressed: str | None
    #: for condvar waits: the canonical lock the wait releases (waiting
    #: while holding *only* that lock is the intended pattern, not a finding)
    own_lock: str | None = None


@dataclass
class MethodModel:
    """Everything the checker needs to know about one function/method."""

    qualname: str              #: ``"repro.obs.flight.FlightRecorder.drain"``
    module: str
    cls: str | None
    name: str
    lineno: int
    acquires: list[Acquire] = field(default_factory=list)
    writes: list[Write] = field(default_factory=list)
    calls: list[CallEvent] = field(default_factory=list)
    blocking: list[Blocking] = field(default_factory=list)


@dataclass
class ClassModel:
    """One class: its lock attributes, attribute types, and methods."""

    name: str
    module: str
    locks: dict[str, LockSite] = field(default_factory=dict)       #: attr -> site
    attr_types: dict[str, str] = field(default_factory=dict)       #: attr -> class name
    methods: dict[str, MethodModel] = field(default_factory=dict)


@dataclass
class CodeModel:
    """The whole analyzed corpus."""

    classes: dict[str, ClassModel] = field(default_factory=dict)   #: "module.Class"
    methods: dict[str, MethodModel] = field(default_factory=dict)  #: qualname
    module_locks: dict[str, LockSite] = field(default_factory=dict)
    #: simple class name -> list of "module.Class" (for attr-type resolution)
    classes_by_name: dict[str, list[str]] = field(default_factory=dict)
    #: method name -> list of qualnames (for unique-name fallback)
    methods_by_name: dict[str, list[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def canonical(self, lock_key: str) -> str:
        """Condition sites resolve to the lock they share (fixpoint)."""
        seen = set()
        key = lock_key
        while key not in seen:
            seen.add(key)
            site = self._site(key)
            if site is None or site.alias_of is None:
                return key
            key = site.alias_of
        return key

    def _site(self, key: str) -> LockSite | None:
        if key in self.module_locks:
            return self.module_locks[key]
        cls_attr = key.rsplit(".", 1)
        if len(cls_attr) == 2:
            for cls in self.classes.values():
                if cls.name == cls_attr[0]:
                    return cls.locks.get(cls_attr[1])
        return None

    def lock_sites(self) -> list[LockSite]:
        """Every discovered lock site (module-level and class attributes)."""
        out = list(self.module_locks.values())
        for cls in self.classes.values():
            out.extend(cls.locks.values())
        return out

    # ------------------------------------------------------------------
    def resolve_call(self, caller: MethodModel, call: CallEvent) -> list[str]:
        """Qualnames ``call`` may land on (empty when unresolvable)."""
        # self.m() -> the caller's own class.
        if call.receiver == "self" and caller.cls is not None:
            target = f"{caller.module}.{caller.cls}.{call.name}"
            return [target] if target in self.methods else []
        # self.attr.m() -> via the attribute's recorded type.
        if call.receiver is not None and call.receiver.startswith("self.") and caller.cls:
            cls = self.classes.get(f"{caller.module}.{caller.cls}")
            type_name = cls.attr_types.get(call.receiver[5:]) if cls else None
            if type_name:
                for qual_cls in self.classes_by_name.get(type_name, ()):
                    target = f"{qual_cls}.{call.name}"
                    if target in self.methods:
                        return [target]
        # bare f() -> module-level function in the same module.
        if call.receiver is None:
            target = f"{caller.module}.{call.name}"
            if target in self.methods:
                return [target]
        # unique-name fallback: exactly one analyzed class defines it.
        candidates = [
            q for q in self.methods_by_name.get(call.name, ())
            if self.methods[q].cls is not None
        ]
        owners = {q.rsplit(".", 2)[1] for q in candidates}
        if len(owners) == 1 and candidates:
            return candidates[:1] if len(candidates) == 1 else [candidates[0]]
        return []


# ---------------------------------------------------------------------------
# Per-function walker
# ---------------------------------------------------------------------------
class _FunctionWalker:
    """Walks one function body tracking the set of held locks."""

    def __init__(self, model: CodeModel, method: MethodModel,
                 class_model: ClassModel | None,
                 module_locks: dict[str, LockSite],
                 suppressions: dict[int, str]) -> None:
        self.model = model
        self.method = method
        self.cls = class_model
        self.module_locks = module_locks
        self.suppressions = suppressions
        self.held: list[str] = []

    # -- lock expression resolution --------------------------------------
    def lock_key(self, node: ast.expr) -> str | None:
        """The lock site a ``with``/acquire target refers to, if known."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.cls is not None
            and node.attr in self.cls.locks
        ):
            return f"{self.cls.name}.{node.attr}"
        if isinstance(node, ast.Name):
            key = f"{self.method.module}.{node.id}"
            if key in self.module_locks:
                return key
        return None

    def _suppression(self, lineno: int) -> str | None:
        return self.suppressions.get(lineno)

    def _held_tuple(self) -> tuple[str, ...]:
        # Deduplicate while preserving acquisition order.
        out: list[str] = []
        for key in self.held:
            if key not in out:
                out.append(key)
        return tuple(out)

    # -- statement-list processing ---------------------------------------
    def walk_body(self, body: list[ast.stmt]) -> None:
        i = 0
        while i < len(body):
            stmt = body[i]
            bare = self._bare_acquire(stmt)
            if bare is not None:
                lock_key, lineno = bare
                safe = self._release_follows(body[i + 1:], lock_key)
                canonical = self.model.canonical(lock_key)
                self.method.acquires.append(Acquire(
                    lock=canonical, held=self._held_tuple(), lineno=lineno,
                    bare=True, safe=safe,
                ))
                # The lock is held for the rest of this block (approximation:
                # until a matching release statement).
                self.held.append(canonical)
                self._visit_expr(stmt)
                i += 1
                continue
            released = self._bare_release(stmt)
            if released is not None and self.model.canonical(released) in self.held:
                self.held.remove(self.model.canonical(released))
                i += 1
                continue
            self.visit_stmt(stmt)
            i += 1

    def _bare_acquire(self, stmt: ast.stmt) -> tuple[str, int] | None:
        """``lock.acquire(...)`` as a standalone statement."""
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return None
        call = stmt.value
        if isinstance(call.func, ast.Attribute) and call.func.attr == "acquire":
            key = self.lock_key(call.func.value)
            if key is not None:
                return key, stmt.lineno
        return None

    def _bare_release(self, stmt: ast.stmt) -> str | None:
        if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
            return None
        call = stmt.value
        if isinstance(call.func, ast.Attribute) and call.func.attr == "release":
            return self.lock_key(call.func.value)
        return None

    def _release_follows(self, rest: list[ast.stmt], lock_key: str) -> bool:
        """Whether a following sibling ``try`` releases ``lock_key`` in finally."""
        for stmt in rest:
            if isinstance(stmt, ast.Try) and stmt.finalbody:
                for fin in ast.walk(ast.Module(body=stmt.finalbody, type_ignores=[])):
                    if (
                        isinstance(fin, ast.Call)
                        and isinstance(fin.func, ast.Attribute)
                        and fin.func.attr == "release"
                        and self.lock_key(fin.func.value) == lock_key
                    ):
                        return True
                return False
            # Any other statement between acquire and try leaves an
            # exception window; stop at the first non-try statement.
            return False
        return False

    # -- structured statements -------------------------------------------
    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.With):
            self._visit_with(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs run later, under unknown lock state
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.If,)):
            self._visit_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._visit_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        else:
            self._record_writes(stmt)
            self._visit_expr(stmt)

    def _visit_with(self, stmt: ast.With) -> None:
        acquired: list[str] = []
        for item in stmt.items:
            expr = item.context_expr
            key = self.lock_key(expr)
            if key is not None:
                canonical = self.model.canonical(key)
                self.method.acquires.append(Acquire(
                    lock=canonical, held=self._held_tuple(),
                    lineno=stmt.lineno, bare=False,
                ))
                self.held.append(canonical)
                acquired.append(canonical)
            else:
                self._visit_expr(expr)
        self.walk_body(stmt.body)
        for canonical in reversed(acquired):
            if canonical in self.held:
                self.held.remove(canonical)

    # -- writes ----------------------------------------------------------
    def _record_writes(self, stmt: ast.stmt) -> None:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            attr = self._self_attr(target)
            if attr is not None:
                self.method.writes.append(Write(
                    attr=attr, held=self._held_tuple(), lineno=stmt.lineno,
                    suppressed=self._suppression(stmt.lineno),
                ))

    def _self_attr(self, node: ast.expr) -> str | None:
        """``self.x`` / ``self.x[...]`` as a write target -> ``"x"``."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    # -- expressions: calls / blocking -----------------------------------
    def _visit_expr(self, node: ast.AST) -> None:
        for child in ast.walk(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                self._record_call(child)

    def _record_call(self, call: ast.Call) -> None:
        held = self._held_tuple()
        lineno = call.lineno
        suppressed = self._suppression(lineno)
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                self.method.blocking.append(Blocking(
                    what=func.id, held=held, lineno=lineno, suppressed=suppressed,
                ))
            self.method.calls.append(CallEvent(
                name=func.id, receiver=None, held=held,
                lineno=lineno, suppressed=suppressed,
            ))
            return
        if not isinstance(func, ast.Attribute):
            return
        receiver = self._receiver(func.value)
        name = func.attr
        if name in ("wait", "wait_for"):
            own = None
            key = self.lock_key(func.value)
            if key is not None:
                own = self.model.canonical(key)
            self.method.blocking.append(Blocking(
                what=f"{receiver or '?'}.{name}", held=held, lineno=lineno,
                suppressed=suppressed, own_lock=own,
            ))
            return
        if name in _BLOCKING_ATTRS and not self._join_exempt(name, func.value, receiver):
            self.method.blocking.append(Blocking(
                what=f"{receiver or '?'}.{name}", held=held, lineno=lineno,
                suppressed=suppressed,
            ))
        if name in ("acquire", "release"):
            return  # handled structurally by walk_body
        self.method.calls.append(CallEvent(
            name=name, receiver=receiver, held=held,
            lineno=lineno, suppressed=suppressed,
        ))

    def _join_exempt(self, name: str, value: ast.expr, receiver: str | None) -> bool:
        """``", ".join`` / ``os.path.join`` are string/path ops, not threads."""
        if name != "join":
            return False
        if isinstance(value, (ast.Constant, ast.JoinedStr)):
            return True
        return receiver in _JOIN_EXEMPT_RECEIVERS or (
            receiver is not None and receiver.endswith(".path")
        )

    def _receiver(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return "self" if node.id == "self" else node.id
        if isinstance(node, ast.Attribute):
            base = self._receiver(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


# ---------------------------------------------------------------------------
# Class / module scanning
# ---------------------------------------------------------------------------
def _lock_ctor_kind(call: ast.expr) -> tuple[str, ast.expr | None] | None:
    """``threading.Lock()`` / ``new_condition(x)`` -> (kind, base-lock expr)."""
    if not isinstance(call, ast.Call):
        return None
    func = call.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    if name not in _LOCK_CTORS:
        return None
    kind = _LOCK_CTORS[name]
    base = call.args[0] if (kind == "condition" and call.args) else None
    if base is not None and isinstance(base, ast.Constant):
        base = None
    return kind, base


def _scan_class(module: str, node: ast.ClassDef) -> ClassModel:
    cls = ClassModel(name=node.name, module=module)
    pending_conditions: list[tuple[str, ast.expr, int]] = []
    for fn in node.body:
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(fn):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if target is None or not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            attr = target.attr
            ctor = _lock_ctor_kind(value) if value is not None else None
            if ctor is not None:
                kind, base = ctor
                if kind == "condition" and base is not None:
                    pending_conditions.append((attr, base, stmt.lineno))
                else:
                    cls.locks[attr] = LockSite(
                        key=f"{node.name}.{attr}", kind=kind,
                        module=module, lineno=stmt.lineno,
                    )
                continue
            # Attribute types, for receiver resolution.
            type_name = None
            if annotation is not None:
                type_name = _annotation_name(annotation)
            if type_name is None and isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                type_name = value.func.id
            if type_name and attr not in cls.attr_types:
                cls.attr_types[attr] = type_name
    for attr, base, lineno in pending_conditions:
        alias = None
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
            and base.attr in cls.locks
        ):
            alias = f"{node.name}.{base.attr}"
        cls.locks[attr] = LockSite(
            key=f"{node.name}.{attr}", kind="condition",
            module=module, lineno=lineno, alias_of=alias,
        )
    return cls


def _annotation_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("\"'").split("|")[0].strip()
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _scan_suppressions(source: str) -> dict[int, str]:
    out: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            out[lineno] = match.group("reason").strip()
    return out


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def build_model_from_sources(sources: dict[str, str]) -> CodeModel:
    """Build the corpus model from ``{module_name: source}`` pairs."""
    model = CodeModel()
    parsed: dict[str, tuple[ast.Module, dict[int, str]]] = {}
    # Pass 1: discover classes, lock attributes, module locks.
    for module, source in sorted(sources.items()):
        tree = ast.parse(source)
        suppressions = _scan_suppressions(source)
        parsed[module] = (tree, suppressions)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                cls = _scan_class(module, node)
                qual = f"{module}.{cls.name}"
                model.classes[qual] = cls
                model.classes_by_name.setdefault(cls.name, []).append(qual)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                ctor = _lock_ctor_kind(node.value)
                if isinstance(target, ast.Name) and ctor is not None:
                    key = f"{module}.{target.id}"
                    model.module_locks[key] = LockSite(
                        key=key, kind=ctor[0], module=module, lineno=node.lineno,
                    )
    # Pass 2: walk every function/method with lock resolution available.
    for module, (tree, suppressions) in parsed.items():
        module_locks = {
            k: v for k, v in model.module_locks.items() if v.module == module
        }
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _walk_function(model, module, None, node, module_locks, suppressions)
            elif isinstance(node, ast.ClassDef):
                qual = f"{module}.{node.name}"
                for fn in node.body:
                    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        _walk_function(
                            model, module, model.classes[qual], fn,
                            module_locks, suppressions,
                        )
    return model


def _walk_function(model: CodeModel, module: str, cls: ClassModel | None,
                   node: ast.FunctionDef | ast.AsyncFunctionDef,
                   module_locks: dict[str, LockSite],
                   suppressions: dict[int, str]) -> None:
    cls_name = cls.name if cls is not None else None
    qual = f"{module}.{cls_name}.{node.name}" if cls_name else f"{module}.{node.name}"
    method = MethodModel(
        qualname=qual, module=module, cls=cls_name, name=node.name,
        lineno=node.lineno,
    )
    walker = _FunctionWalker(model, method, cls, module_locks, suppressions)
    walker.walk_body(node.body)
    model.methods[qual] = method
    model.methods_by_name.setdefault(node.name, []).append(qual)
    if cls is not None:
        cls.methods[node.name] = method


def build_model(root: Path | str) -> CodeModel:
    """Build the model for every ``.py`` file under ``root``.

    Module names are dotted paths rooted at ``root``'s basename (for the
    framework: ``repro.obs.flight`` etc.), matching the ``where`` strings
    in diagnostics and the committed baseline.
    """
    root = Path(root)
    sources: dict[str, str] = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        parts = (root.name,) + rel.parts[:-1]
        stem = rel.stem
        module = ".".join(parts if stem == "__init__" else parts + (stem,))
        sources[module] = path.read_text(encoding="utf-8")
    return build_model_from_sources(sources)
