"""Runtime lock-order sanitizer: instrumented locks over a held-set model.

The static half of the concurrency toolkit (:mod:`repro.analysis.lockcheck`)
reasons about lock discipline from source; this module checks the same
discipline *live*.  When active, the factories below hand out wrapped
primitives that report every acquire/release to a process-wide
:class:`LockOrderSanitizer`, which maintains

* a **per-thread held-set** (which sanitized locks this thread holds, with
  reentrancy counts so RLocks do not self-report), and
* a **process-global lock-acquisition-order graph** keyed by lock *site*
  (the name passed to the factory, normally ``"Class._attr"``): acquiring
  ``B`` while holding ``A`` adds the edge ``A -> B``.

Two violation kinds are detected at the moment they happen:

* ``lock-order-cycle`` — the new edge closes a cycle in the order graph
  (the classic ABBA deadlock pattern, caught even when the interleaving
  that would actually deadlock never fires);
* ``wait-while-holding`` — ``Condition.wait``/``wait_for`` entered while
  the thread holds a lock *other than* the condition's own (the waiter
  parks holding a resource the waker may need).

Violations are recorded on the sanitizer (``.violations``) and as a
flight-recorder event (kind ``"tsan"``); in ``strict`` mode they raise
:class:`LockOrderViolation` at the offending call site.

Activation mirrors the tracer/device/fault-injector pattern
(:mod:`repro.util.ctxstack`): the default is a :class:`NullSanitizer`
whose factories return the **raw** ``threading`` primitives — the
disabled-path overhead is exactly zero because nothing is wrapped.
``REPRO_TSAN=1`` (or ``=strict``) at process start installs a real
sanitizer as the process-wide default, so every lock the framework
creates from then on is instrumented; ``use_sanitizer()`` scopes one to a
block for tests.  Because instrumentation is decided at lock *creation*
time, objects built before activation keep raw locks — activate first,
construct after.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Any, Callable, Iterator, Union

from repro.util.ctxstack import ContextStack

__all__ = [
    "LockOrderSanitizer",
    "LockOrderViolation",
    "NullSanitizer",
    "SanitizedCondition",
    "SanitizedLock",
    "current_sanitizer",
    "new_condition",
    "new_lock",
    "new_rlock",
    "use_sanitizer",
]


class LockOrderViolation(RuntimeError):
    """A lock-discipline violation detected at runtime (strict mode only)."""

    def __init__(self, message: str, details: dict[str, Any]) -> None:
        super().__init__(message)
        self.details = details


class SanitizedLock:
    """A ``threading.Lock``/``RLock`` wrapper reporting to a sanitizer.

    The wrapper is API-compatible with the wrapped primitive for every use
    the framework makes of it (``with``, ``acquire``/``release``,
    ``locked``) and is accepted by ``threading.Condition`` as its
    underlying lock, so condvar release/re-acquire cycles stay visible to
    the held-set model.
    """

    def __init__(self, sanitizer: "LockOrderSanitizer", inner: Any, name: str,
                 reentrant: bool = False) -> None:
        self._san = sanitizer
        self._inner = inner
        self.name = name
        self.reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # Order/cycle bookkeeping happens *before* blocking: if the cycle
        # this acquire closes actually deadlocks, a post-acquire check
        # would never run.  Non-blocking attempts cannot deadlock and are
        # exempt from ordering (Condition._is_owned probes use them).
        if blocking:
            self._san._before_acquire(self)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._san._acquired(self)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._san._released(self)

    def locked(self) -> bool:
        return bool(self._inner.locked()) if hasattr(self._inner, "locked") else False

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SanitizedLock({self.name!r})"


class SanitizedCondition:
    """A ``threading.Condition`` over a :class:`SanitizedLock`.

    Delegates everything to a real condition built on the wrapped lock (so
    wait's release/re-acquire runs through the wrapper and the held-set
    stays exact) and adds the wait-while-holding-foreign-lock check.
    """

    def __init__(self, sanitizer: "LockOrderSanitizer", lock: SanitizedLock, name: str) -> None:
        self._san = sanitizer
        self._lock = lock
        self._inner = threading.Condition(lock)  # type: ignore[arg-type]
        self.name = name

    # -- lock protocol ---------------------------------------------------
    def acquire(self, *args: Any) -> bool:
        return bool(self._inner.acquire(*args))

    def release(self) -> None:
        self._inner.release()

    def __enter__(self) -> bool:
        return bool(self._inner.__enter__())

    def __exit__(self, *exc: Any) -> None:
        self._inner.__exit__(*exc)

    # -- condvar protocol ------------------------------------------------
    def wait(self, timeout: float | None = None) -> bool:
        self._san._check_wait(self._lock, self.name)
        return bool(self._inner.wait(timeout))

    def wait_for(self, predicate: Callable[[], Any], timeout: float | None = None) -> Any:
        self._san._check_wait(self._lock, self.name)
        return self._inner.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SanitizedCondition({self.name!r})"


class LockOrderSanitizer:
    """The process-global order graph + per-thread held-sets.

    Parameters
    ----------
    strict:
        When True, a violation raises :class:`LockOrderViolation` at the
        offending acquire/wait; otherwise it is recorded (``.violations``,
        flight recorder) and execution continues — the mode the CI
        ``REPRO_TSAN=1`` job uses so one violation does not mask others.
    """

    enabled = True

    def __init__(self, strict: bool = False, name: str = "tsan") -> None:
        self.strict = strict
        self.name = name
        # The sanitizer's own mutex is a *raw* lock and is never held while
        # calling out, so instrumentation cannot deadlock itself.
        self._meta = threading.Lock()
        self._tls = threading.local()
        #: site -> set of sites acquired while holding it
        self._order: dict[str, set[str]] = {}
        #: (holder site, acquired site) -> first observing thread name
        self._edge_threads: dict[tuple[str, str], str] = {}
        self.violations: list[dict[str, Any]] = []
        self.acquisitions = 0
        self._anon = 0

    # -- factories -------------------------------------------------------
    def _site(self, name: str, kind: str) -> str:
        if name:
            return name
        with self._meta:
            self._anon += 1
            return f"{kind}-{self._anon}"

    def lock(self, name: str = "") -> SanitizedLock:
        """An instrumented mutex for the lock site ``name``."""
        return SanitizedLock(self, threading.Lock(), self._site(name, "lock"))

    def rlock(self, name: str = "") -> SanitizedLock:
        """An instrumented reentrant mutex for the lock site ``name``."""
        return SanitizedLock(self, threading.RLock(), self._site(name, "rlock"), reentrant=True)

    def condition(self, lock: Any = None, name: str = "") -> Any:
        """An instrumented condition variable.

        ``lock`` may be a :class:`SanitizedLock` this sanitizer issued
        (the condition shares it — the ``SnapshotCache`` pattern), ``None``
        (a private instrumented lock is created), or a raw primitive from
        before activation — in which case a plain ``threading.Condition``
        over that same mutex is returned, uninstrumented but correct.
        """
        site = self._site(name, "condition")
        if lock is None:
            lock = SanitizedLock(self, threading.Lock(), site)
        elif not isinstance(lock, SanitizedLock):
            return threading.Condition(lock)
        return SanitizedCondition(self, lock, site)

    # -- held-set model --------------------------------------------------
    def _held(self) -> dict[int, list[Any]]:
        """``id(wrapper) -> [wrapper, count]`` for the calling thread."""
        held = getattr(self._tls, "held", None)
        if held is None:
            held = {}
            self._tls.held = held
        return held

    def held_sites(self) -> list[str]:
        """Sites the calling thread currently holds (diagnostics/tests)."""
        return [entry[0].name for entry in self._held().values()]

    def _before_acquire(self, lock: SanitizedLock) -> None:
        held = self._held()
        entry = held.get(id(lock))
        if entry is not None:
            # Re-acquiring a lock this thread already holds: legal only for
            # RLocks and never an ordering event.
            return
        holders = [e[0].name for e in held.values() if e[0].name != lock.name]
        if not holders:
            return
        cycle: list[str] | None = None
        with self._meta:
            for holder in holders:
                self._order.setdefault(holder, set()).add(lock.name)
                self._edge_threads.setdefault(
                    (holder, lock.name), threading.current_thread().name
                )
            cycle = self._find_cycle_locked(lock.name, set(holders))
        if cycle is not None:
            self._violation(
                "lock-order-cycle",
                f"acquiring {lock.name!r} while holding {holders!r} closes the "
                f"order cycle {' -> '.join(cycle)}",
                cycle=cycle,
                acquiring=lock.name,
                holding=holders,
            )

    def _find_cycle_locked(self, start: str, targets: set[str]) -> list[str] | None:
        """A path ``start -> ... -> t`` for some held ``t`` (meta lock held)."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            for succ in self._order.get(node, ()):
                if succ in targets:
                    return path + [succ, start]
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def _acquired(self, lock: SanitizedLock) -> None:
        held = self._held()
        entry = held.get(id(lock))
        if entry is None:
            held[id(lock)] = [lock, 1]
        else:
            entry[1] += 1
        with self._meta:
            self.acquisitions += 1

    def _released(self, lock: SanitizedLock) -> None:
        held = self._held()
        entry = held.get(id(lock))
        if entry is None:  # released a lock acquired before instrumentation
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del held[id(lock)]

    def _check_wait(self, own: SanitizedLock, cond_name: str) -> None:
        foreign = [
            e[0].name for e in self._held().values() if e[0] is not own
        ]
        if foreign:
            self._violation(
                "wait-while-holding",
                f"waiting on {cond_name!r} while holding foreign lock(s) {foreign!r}",
                condition=cond_name,
                holding=foreign,
            )

    # -- reporting -------------------------------------------------------
    def _violation(self, kind: str, message: str, **details: Any) -> None:
        record = {
            "kind": kind,
            "message": message,
            "thread": threading.current_thread().name,
            **details,
        }
        with self._meta:
            self.violations.append(record)
        # The flight recorder is the incident-response channel: a violation
        # lands in the ring even when the run carries on.
        from repro.obs.flight import current_flight_recorder

        current_flight_recorder().record("tsan", kind, **{
            k: v for k, v in record.items() if k != "kind"
        })
        if self.strict:
            raise LockOrderViolation(message, record)

    def order_graph(self) -> dict[str, set[str]]:
        """Copy of the observed acquisition-order edges."""
        with self._meta:
            return {k: set(v) for k, v in self._order.items()}

    def order_cycles(self) -> list[list[str]]:
        """Every elementary cycle currently closed in the order graph."""
        with self._meta:
            graph = {k: sorted(v) for k, v in self._order.items()}
        cycles: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()
        for start in sorted(graph):
            stack: list[tuple[str, list[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for succ in graph.get(node, ()):
                    if succ == start:
                        cycle = path + [start]
                        key = tuple(sorted(cycle[:-1]))
                        if key not in seen_keys:
                            seen_keys.add(key)
                            cycles.append(cycle)
                    elif succ not in path:
                        stack.append((succ, path + [succ]))
        return cycles

    def report(self) -> str:
        """Human-readable summary (printed by the REPRO_TSAN session gate)."""
        lines = [
            f"sanitizer {self.name}: {self.acquisitions} acquisition(s), "
            f"{len(self.violations)} violation(s), "
            f"{len(self.order_cycles())} order cycle(s)"
        ]
        for v in self.violations:
            lines.append(f"  [{v['kind']}] {v['message']} (thread {v['thread']})")
        return "\n".join(lines)


class NullSanitizer:
    """Disabled default: factories return the raw ``threading`` primitives.

    The instrumented path costs nothing when off because nothing is
    wrapped — the benchmark gate in
    ``benchmarks/test_micro_obs_overhead.py`` pins this down by type.
    """

    enabled = False
    strict = False
    violations: list[dict[str, Any]] = []
    acquisitions = 0

    def lock(self, name: str = "") -> threading.Lock:
        return threading.Lock()

    def rlock(self, name: str = "") -> "threading.RLock":  # type: ignore[valid-type]
        return threading.RLock()

    def condition(self, lock: Any = None, name: str = "") -> threading.Condition:
        return threading.Condition(lock)

    def held_sites(self) -> list[str]:
        return []

    def order_graph(self) -> dict[str, set[str]]:
        return {}

    def order_cycles(self) -> list[list[str]]:
        return []

    def report(self) -> str:
        return "sanitizer disabled"


#: The process-wide default: no instrumentation.
NULL_SANITIZER = NullSanitizer()

AnySanitizer = Union[LockOrderSanitizer, NullSanitizer]

_STACK: ContextStack[AnySanitizer] = ContextStack(NULL_SANITIZER)

_env = os.environ.get("REPRO_TSAN", "")
if _env not in ("", "0"):
    # Process-start activation: every lock the framework creates from here
    # on is instrumented, on every thread (the default is process-wide).
    _STACK.set_default(LockOrderSanitizer(strict=_env == "strict"))


def current_sanitizer() -> AnySanitizer:
    """The calling thread's innermost active sanitizer (null unless installed)."""
    return _STACK.current()


@contextlib.contextmanager
def use_sanitizer(sanitizer: AnySanitizer) -> Iterator[AnySanitizer]:
    """Run a block with ``sanitizer`` active on this thread.

    Locks created inside the block are instrumented; locks that already
    exist are not retrofitted (instrumentation is a creation-time choice).
    """
    with _STACK.use(sanitizer):
        yield sanitizer


# ---------------------------------------------------------------------------
# The factories the framework's threaded modules call
# ---------------------------------------------------------------------------
def new_lock(name: str = "") -> Any:
    """A mutex for lock site ``name`` — raw when no sanitizer is active."""
    return current_sanitizer().lock(name)


def new_rlock(name: str = "") -> Any:
    """A reentrant mutex for lock site ``name`` — raw when inactive."""
    return current_sanitizer().rlock(name)


def new_condition(lock: Any = None, name: str = "") -> Any:
    """A condition variable for site ``name``, optionally over ``lock``."""
    return current_sanitizer().condition(lock, name)
