"""Lock-discipline static analyzer: STG2xx diagnostics over the AST model.

Four checks run over the :class:`~repro.analysis.callgraph.CodeModel`:

* **STG201 — lock-order cycles.**  Acquiring ``B`` while holding ``A``
  (directly, or by calling a method whose transitive "may acquire" summary
  contains ``B``) adds the edge ``A -> B`` to a global order graph; any
  strongly connected component with a cycle is a potential deadlock.
* **STG202 — mixed guarded/unguarded writes.**  An attribute written both
  under a lock of its class and with no lock held is a data-race
  candidate; the unguarded sites are reported unless carrying a
  ``# lockcheck: ok(<reason>)`` suppression.
* **STG203 — bare ``.acquire()``.**  An ``acquire`` outside a ``with``
  whose release is not pinned in an immediately following ``finally``
  leaks the lock on any exception in between.
* **STG204 — blocking under a lock.**  A primitively blocking call
  (``join``, ``Condition.wait``, ``time.sleep``, file/socket I/O, …) — or
  a call to a method that transitively may block — while holding a lock
  stalls every other thread contending for it.  Waiting on a condition
  while holding *only* that condition's own lock is the intended condvar
  pattern and exempt.

Findings flow through the compiler's diagnostics machinery
(:class:`~repro.compiler.diagnostics.LintReport`), and the committed
baseline (``src/repro/analysis/BASELINE.json``) holds triaged pre-existing
findings so ``repro lint --concurrency`` gates only on regressions: a
finding is matched against the baseline by its stable ``(code, where)``
fingerprint, never by line number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.callgraph import CodeModel, MethodModel, build_model, build_model_from_sources
from repro.compiler.diagnostics import Diagnostic, LintReport

__all__ = [
    "BaselineEntry",
    "analyze_model",
    "analyze_path",
    "analyze_source",
    "apply_baseline",
    "default_baseline_path",
    "load_baseline",
    "write_baseline",
]


def default_baseline_path() -> Path:
    """The committed baseline shipped with the analysis package."""
    return Path(__file__).resolve().parent / "BASELINE.json"


# ---------------------------------------------------------------------------
# Check 1: lock-order cycles (STG201)
# ---------------------------------------------------------------------------
def _may_acquire(model: CodeModel) -> dict[str, set[str]]:
    """Fixpoint: locks each method may acquire, directly or via calls."""
    resolved_calls: dict[str, list[str]] = {
        qual: [t for call in m.calls for t in model.resolve_call(m, call)]
        for qual, m in model.methods.items()
    }
    summary: dict[str, set[str]] = {
        qual: {a.lock for a in m.acquires} for qual, m in model.methods.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, callees in resolved_calls.items():
            mine = summary[qual]
            before = len(mine)
            for callee in callees:
                mine |= summary.get(callee, set())
            if len(mine) != before:
                changed = True
    return summary


def _order_edges(model: CodeModel, may_acquire: dict[str, set[str]]
                 ) -> dict[tuple[str, str], tuple[str, int]]:
    """``(holder, acquired) -> (method qualname, lineno)`` provenance."""
    edges: dict[tuple[str, str], tuple[str, int]] = {}
    for qual, method in model.methods.items():
        for acq in method.acquires:
            for held in acq.held:
                if held != acq.lock:
                    edges.setdefault((held, acq.lock), (qual, acq.lineno))
        for call in method.calls:
            if not call.held:
                continue
            for callee in model.resolve_call(method, call):
                for lock in may_acquire.get(callee, ()):
                    for held in call.held:
                        if held != lock:
                            edges.setdefault((held, lock), (qual, call.lineno))
    return edges


def _check_lock_order(model: CodeModel, report: LintReport) -> None:
    edges = _order_edges(model, _may_acquire(model))
    graph: dict[str, set[str]] = {}
    for holder, acquired in edges:
        graph.setdefault(holder, set()).add(acquired)
    seen_cycles: set[tuple[str, ...]] = set()
    for start in sorted(graph):
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    cycle = path + [start]
                    key = tuple(sorted(cycle[:-1]))
                    if key in seen_cycles:
                        continue
                    seen_cycles.add(key)
                    sites = "; ".join(
                        f"{a}->{b} at {edges[(a, b)][0]}:{edges[(a, b)][1]}"
                        for a, b in zip(cycle, cycle[1:])
                        if (a, b) in edges
                    )
                    report.add(
                        "STG201",
                        f"lock-order cycle {' -> '.join(cycle)} ({sites})",
                        where="cycle:" + "->".join(sorted(cycle[:-1])),
                    )
                elif succ not in path:
                    stack.append((succ, path + [succ]))


# ---------------------------------------------------------------------------
# Check 2: mixed guarded/unguarded writes (STG202)
# ---------------------------------------------------------------------------
def _check_guarded_writes(model: CodeModel, report: LintReport) -> None:
    for qual_cls in sorted(model.classes):
        cls = model.classes[qual_cls]
        if not cls.locks:
            continue
        class_locks = {site.key for site in cls.locks.values()}
        class_locks |= {model.canonical(site.key) for site in cls.locks.values()}
        guarded: dict[str, bool] = {}
        unguarded: dict[str, list[tuple[MethodModel, int, str | None]]] = {}
        for method in cls.methods.values():
            if method.name == "__init__":
                continue  # construction happens-before sharing
            for write in method.writes:
                if write.attr in cls.locks:
                    continue
                if any(h in class_locks for h in write.held):
                    guarded[write.attr] = True
                elif not write.held:
                    unguarded.setdefault(write.attr, []).append(
                        (method, write.lineno, write.suppressed)
                    )
        for attr in sorted(set(guarded) & set(unguarded)):
            for method, lineno, suppressed in unguarded[attr]:
                if suppressed is not None:
                    continue
                report.add(
                    "STG202",
                    f"attribute {attr!r} written under {qual_cls.rsplit('.', 1)[1]}'s "
                    f"lock elsewhere but unguarded here (line {lineno})",
                    where=method.qualname,
                )


# ---------------------------------------------------------------------------
# Check 3: bare .acquire() (STG203)
# ---------------------------------------------------------------------------
def _check_bare_acquire(model: CodeModel, report: LintReport) -> None:
    for qual in sorted(model.methods):
        method = model.methods[qual]
        for acq in method.acquires:
            if acq.bare and not acq.safe:
                report.add(
                    "STG203",
                    f"bare {acq.lock}.acquire() without with/finally release "
                    f"(line {acq.lineno}) leaks the lock on exception",
                    where=method.qualname,
                )


# ---------------------------------------------------------------------------
# Check 4: blocking while holding a lock (STG204)
# ---------------------------------------------------------------------------
def _may_block(model: CodeModel) -> dict[str, str]:
    """Fixpoint: method qualname -> rendered reason it may block (or absent)."""
    summary: dict[str, str] = {}
    for qual, method in model.methods.items():
        for block in method.blocking:
            summary.setdefault(qual, block.what)
    resolved_calls: dict[str, list[tuple[str, str]]] = {
        qual: [(t, call.name) for call in m.calls for t in model.resolve_call(m, call)]
        for qual, m in model.methods.items()
    }
    changed = True
    while changed:
        changed = False
        for qual, callees in resolved_calls.items():
            if qual in summary:
                continue
            for callee, name in callees:
                if callee in summary:
                    summary[qual] = f"{name} -> {summary[callee]}"
                    changed = True
                    break
    return summary


def _check_blocking(model: CodeModel, report: LintReport) -> None:
    may_block = _may_block(model)
    for qual in sorted(model.methods):
        method = model.methods[qual]
        for block in method.blocking:
            if not block.held or block.suppressed is not None:
                continue
            foreign = [h for h in block.held if block.own_lock is None or h != block.own_lock]
            if not foreign:
                continue  # condvar wait holding only its own lock
            report.add(
                "STG204",
                f"blocking call {block.what} (line {block.lineno}) while "
                f"holding {foreign!r}",
                where=method.qualname,
            )
        for call in method.calls:
            if not call.held or call.suppressed is not None:
                continue
            for callee in model.resolve_call(method, call):
                reason = may_block.get(callee)
                # Direct blocking at this site is already reported above;
                # the transitive pass covers callees that block deeper down.
                if reason is not None:
                    report.add(
                        "STG204",
                        f"call {call.name} (line {call.lineno}) may block "
                        f"({reason}) while holding {list(call.held)!r}",
                        where=method.qualname,
                    )
                    break


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def analyze_model(model: CodeModel, subject: str = "concurrency") -> LintReport:
    """Run every lock-discipline check over ``model``."""
    report = LintReport(subject=subject)
    _check_lock_order(model, report)
    _check_guarded_writes(model, report)
    _check_bare_acquire(model, report)
    _check_blocking(model, report)
    # Deterministic output independent of traversal order.
    report.diagnostics.sort(key=lambda d: (d.code, d.where, d.message))
    return report


def analyze_path(root: Path | str) -> LintReport:
    """Analyze every ``.py`` file under ``root`` (normally ``src/repro``)."""
    return analyze_model(build_model(root), subject=str(root))


def analyze_source(source: str, module: str = "mod") -> LintReport:
    """Analyze a single in-memory module (mutation tests / tooling)."""
    return analyze_model(build_model_from_sources({module: source}), subject=module)


# ---------------------------------------------------------------------------
# Baseline: triaged pre-existing findings, gate on regressions only
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineEntry:
    """One triaged finding: fingerprint plus the human justification."""

    code: str
    where: str
    justification: str

    @property
    def fingerprint(self) -> tuple[str, str]:
        return (self.code, self.where)


def load_baseline(path: Path | str | None = None) -> list[BaselineEntry]:
    """Parse the baseline file (missing file -> empty baseline)."""
    path = Path(path) if path is not None else default_baseline_path()
    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    return [
        BaselineEntry(
            code=str(e["code"]), where=str(e["where"]),
            justification=str(e.get("justification", "")),
        )
        for e in payload.get("findings", [])
    ]


def write_baseline(report: LintReport, path: Path | str,
                   justification: str = "TODO: justify this triaged finding"
                   ) -> list[BaselineEntry]:
    """Write every finding in ``report`` as a baseline; returns the entries.

    Existing justifications at matching fingerprints are preserved so
    re-generating the file never erases triage notes; genuinely new
    entries get the placeholder ``justification`` for a human to edit.
    """
    path = Path(path)
    existing = {e.fingerprint: e.justification for e in load_baseline(path)}
    seen: set[tuple[str, str]] = set()
    findings = []
    for diag in report.diagnostics:
        fp = (diag.code, diag.where)
        if fp in seen:
            continue
        seen.add(fp)
        findings.append({
            "code": diag.code,
            "where": diag.where,
            "severity": diag.severity,
            "justification": existing.get(fp, justification),
        })
    payload = {
        "_comment": "Triaged pre-existing concurrency findings. The "
                    "`repro lint --concurrency` gate fails only on findings "
                    "NOT fingerprinted here; regenerate with "
                    "`repro lint --concurrency --write-baseline` and add a "
                    "justification for every new entry.",
        "findings": findings,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return [
        BaselineEntry(code=f["code"], where=f["where"], justification=f["justification"])
        for f in findings
    ]


def apply_baseline(report: LintReport, baseline: list[BaselineEntry]
                   ) -> tuple[LintReport, list[Diagnostic], list[BaselineEntry]]:
    """Split ``report`` against ``baseline``.

    Returns ``(new_report, baselined, unused)`` where ``new_report`` holds
    only findings absent from the baseline (what the gate judges),
    ``baselined`` the suppressed ones, and ``unused`` stale baseline
    entries whose finding no longer occurs (candidates for deletion —
    reported, never gating).
    """
    known = {e.fingerprint for e in baseline}
    new_report = LintReport(subject=report.subject)
    baselined: list[Diagnostic] = []
    matched: set[tuple[str, str]] = set()
    for diag in report.diagnostics:
        fp = (diag.code, diag.where)
        if fp in known:
            matched.add(fp)
            baselined.append(diag)
        else:
            new_report.diagnostics.append(diag)
    unused = [e for e in baseline if e.fingerprint not in matched]
    return new_report, baselined, unused
